// Package tcpflow tracks TCP flows in a capture: lifecycle flags,
// durations, the short-/long-lived classification of the paper (§6.2),
// per-direction byte and packet accounting, retransmission detection
// and in-order stream reassembly that feeds reassembled payload to an
// application-layer consumer.
package tcpflow

import (
	"net/netip"
	"sort"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/pcap"
)

// Key is the 4-tuple identifying one flow direction-insensitively: the
// lexicographically smaller endpoint is stored first so both directions
// map to the same flow.
type Key struct {
	A, B netip.AddrPort
}

// MakeKey canonicalises the endpoint pair.
func MakeKey(src, dst netip.AddrPort) Key {
	if addrPortLess(src, dst) {
		return Key{A: src, B: dst}
	}
	return Key{A: dst, B: src}
}

func addrPortLess(x, y netip.AddrPort) bool {
	if c := x.Addr().Compare(y.Addr()); c != 0 {
		return c < 0
	}
	return x.Port() < y.Port()
}

// Class is the paper's flow taxonomy.
type Class int

// Flow classes. A flow is short-lived when the capture contains its
// complete lifecycle: a SYN and a matching FIN or RST. Flows that
// started before the capture or were still open when it ended are
// long-lived.
const (
	ShortLived Class = iota
	LongLived
)

func (c Class) String() string {
	if c == ShortLived {
		return "short-lived"
	}
	return "long-lived"
}

// DirStats accounts one direction of a flow.
type DirStats struct {
	Packets      int
	Bytes        int // IP payload bytes (TCP header + payload)
	PayloadBytes int // application payload bytes
	Retransmits  int
}

// Flow is the accumulated state of one 4-tuple.
type Flow struct {
	Key        Key
	First      time.Time
	Last       time.Time
	SawSYN     bool
	SawFIN     bool
	SawRST     bool
	Initiator  netip.AddrPort // sender of the first SYN, if seen
	AtoB, BtoA DirStats

	streams     [2]*stream
	closeCounts bool // flow already booked as closed in the metrics
}

// Duration is the observed flow lifetime within the capture.
func (f *Flow) Duration() time.Duration { return f.Last.Sub(f.First) }

// Class applies the paper's definition.
func (f *Flow) Class() Class {
	if f.SawSYN && (f.SawFIN || f.SawRST) {
		return ShortLived
	}
	return LongLived
}

// Packets returns the total packet count over both directions.
func (f *Flow) Packets() int { return f.AtoB.Packets + f.BtoA.Packets }

// Retransmits returns the total retransmitted segment count.
func (f *Flow) Retransmits() int { return f.AtoB.Retransmits + f.BtoA.Retransmits }

// StreamPayload is a chunk of reassembled in-order payload delivered to
// a consumer. Data and Raw alias the fed packet's buffer (or the
// stream's internal reassembly scratch): they are valid only for the
// duration of the synchronous OnPayload call, and consumers must copy
// whatever they keep. This is what lets the ingest path reuse one
// packet buffer for the whole capture.
type StreamPayload struct {
	Flow     *Flow
	Src, Dst netip.AddrPort
	Time     time.Time // capture time of the segment completing this chunk
	Data     []byte
	// Raw is the segment's payload as captured, regardless of how
	// much of it was new: consumers that want to see retransmitted
	// bytes (the §6.3.1 ablation) read Raw instead of Data.
	Raw        []byte
	Retransmit bool // true when the segment was entirely already-seen data
}

// Consumer receives reassembled stream data and raw packet events.
type Consumer interface {
	// OnPayload is called for every segment that carries payload,
	// with the in-order new data it contributed (possibly empty for
	// pure retransmissions, which are flagged).
	OnPayload(StreamPayload)
}

// Tracker ingests decoded packets and maintains flow state.
type Tracker struct {
	flows    map[Key]*Flow
	order    []*Flow // insertion order for deterministic output
	consumer Consumer
	metrics  *trackerMetrics

	// lastFlow memoizes the most recent lookup: SCADA captures carry
	// long packet runs on one flow (and Key is direction-normalized),
	// so most Feeds skip the map hash entirely.
	lastFlow *Flow

	// first/last span every fed packet, so the capture window survives
	// flow eviction.
	first, last time.Time

	// idleTimeout > 0 enables streaming-mode eviction: flows whose last
	// packet is older than the timeout (in capture time) are dropped
	// from the table, their taxonomy folded into evicted. This bounds
	// memory on endless captures.
	idleTimeout time.Duration
	onEvict     func(*Flow)
	lastSweep   time.Time
	evicted     Summary
	evictedN    int
}

// NewTracker returns an empty tracker. consumer may be nil.
func NewTracker(consumer Consumer) *Tracker {
	return &Tracker{flows: make(map[Key]*Flow), consumer: consumer}
}

// Instrument books flow-lifecycle and reassembly counters into reg
// under the uncharted_tcpflow_* names.
func (t *Tracker) Instrument(reg *obs.Registry) {
	t.metrics = newTrackerMetrics(reg)
}

// SetIdleTimeout enables (d > 0) or disables (d <= 0) idle-flow
// eviction. Eviction keeps the Summarize taxonomy exact — evicted
// flows are folded into an accumulator — but Flows() no longer returns
// them, and a flow that wakes up after eviction is tracked as a fresh
// (long-lived) flow.
func (t *Tracker) SetIdleTimeout(d time.Duration) { t.idleTimeout = d }

// OnEvict registers a callback invoked for every evicted flow, before
// the flow is dropped. Consumers use it to release per-flow state of
// their own (reassembly buffers, framing state).
func (t *Tracker) OnEvict(fn func(*Flow)) { t.onEvict = fn }

// EvictIdle drops every flow whose last packet is older than the idle
// timeout relative to now (capture time) and returns how many were
// evicted. A zero timeout makes it a no-op.
func (t *Tracker) EvictIdle(now time.Time) int {
	if t.idleTimeout <= 0 {
		return 0
	}
	cutoff := now.Add(-t.idleTimeout)
	n := 0
	t.lastFlow = nil // may be about to be evicted
	kept := t.order[:0]
	for _, f := range t.order {
		if f.Last.After(cutoff) {
			kept = append(kept, f)
			continue
		}
		if t.onEvict != nil {
			t.onEvict(f)
		}
		delete(t.flows, f.Key)
		t.evicted.add(f)
		t.evictedN++
		t.metrics.noteFlowEvicted(f.closeCounts)
		n++
	}
	// Zero the freed tail so evicted flows are collectable.
	for i := len(kept); i < len(t.order); i++ {
		t.order[i] = nil
	}
	t.order = kept
	return n
}

// EvictedFlows returns how many flows eviction has dropped.
func (t *Tracker) EvictedFlows() int { return t.evictedN }

// Window returns the first and last packet timestamps ever fed,
// independent of eviction.
func (t *Tracker) Window() (first, last time.Time) { return t.first, t.last }

// Feed ingests one decoded TCP packet.
func (t *Tracker) Feed(pkt pcap.Packet) {
	src := netip.AddrPortFrom(pkt.IP.Src, pkt.TCP.SrcPort)
	dst := netip.AddrPortFrom(pkt.IP.Dst, pkt.TCP.DstPort)
	if t.first.IsZero() || pkt.Info.Timestamp.Before(t.first) {
		t.first = pkt.Info.Timestamp
	}
	if pkt.Info.Timestamp.After(t.last) {
		t.last = pkt.Info.Timestamp
	}
	if t.idleTimeout > 0 {
		// Sweep at a quarter of the timeout so an idle flow lives at
		// most 1.25 timeouts; capture time drives the clock, so replays
		// behave identically at any speed.
		if t.lastSweep.IsZero() {
			t.lastSweep = pkt.Info.Timestamp
		} else if pkt.Info.Timestamp.Sub(t.lastSweep) >= t.idleTimeout/4 {
			t.lastSweep = pkt.Info.Timestamp
			t.EvictIdle(t.last)
		}
	}
	key := MakeKey(src, dst)
	f := t.lastFlow
	if f == nil || f.Key != key {
		var ok bool
		f, ok = t.flows[key]
		if !ok {
			f = &Flow{Key: key, First: pkt.Info.Timestamp, Last: pkt.Info.Timestamp}
			f.streams[0] = newStream()
			f.streams[1] = newStream()
			t.flows[key] = f
			t.order = append(t.order, f)
			t.metrics.noteFlowOpened()
		}
		t.lastFlow = f
	}
	if pkt.Info.Timestamp.Before(f.First) {
		f.First = pkt.Info.Timestamp
	}
	if pkt.Info.Timestamp.After(f.Last) {
		f.Last = pkt.Info.Timestamp
	}
	if pkt.TCP.SYN() {
		f.SawSYN = true
		if !pkt.TCP.ACK() && !f.Initiator.IsValid() {
			f.Initiator = src
		}
	}
	if pkt.TCP.FIN() {
		f.SawFIN = true
	}
	if pkt.TCP.RST() {
		f.SawRST = true
	}
	if (f.SawFIN || f.SawRST) && !f.closeCounts {
		f.closeCounts = true
		t.metrics.noteFlowClosed()
	}

	dirIdx := 0
	ds := &f.AtoB
	if src != f.Key.A {
		dirIdx = 1
		ds = &f.BtoA
	}
	ds.Packets++
	ds.Bytes += len(pkt.IP.Payload)
	ds.PayloadBytes += len(pkt.TCP.Payload)

	if len(pkt.TCP.Payload) == 0 {
		return
	}
	newData, retrans, buffered := f.streams[dirIdx].insert(pkt.TCP.Seq, pkt.TCP.Payload)
	t.metrics.noteSegment(retrans, buffered)
	if retrans {
		ds.Retransmits++
	}
	if t.consumer != nil {
		t.consumer.OnPayload(StreamPayload{
			Flow: f, Src: src, Dst: dst,
			Time:       pkt.Info.Timestamp,
			Data:       newData,
			Raw:        pkt.TCP.Payload,
			Retransmit: retrans,
		})
	}
}

// Flows returns every tracked flow in first-seen order.
func (t *Tracker) Flows() []*Flow { return t.order }

// Summary aggregates the Table 3 numbers for one capture.
type Summary struct {
	ShortLived         int
	ShortLivedSubSec   int // short-lived flows lasting under one second
	ShortLivedOverSec  int
	LongLived          int
	ShortLivedDuration []time.Duration // durations for the Fig. 8 histogram
}

// Total returns the overall flow count.
func (s Summary) Total() int { return s.ShortLived + s.LongLived }

// Proportion helpers for report rendering (0 when the denominator is 0).
func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// ShortProportion is short-lived / total.
func (s Summary) ShortProportion() float64 { return ratio(s.ShortLived, s.Total()) }

// LongProportion is long-lived / total.
func (s Summary) LongProportion() float64 { return ratio(s.LongLived, s.Total()) }

// SubSecProportion is the fraction of short-lived flows lasting under a
// second — the paper's headline 99.8% (Y1) / 93.5% (Y2).
func (s Summary) SubSecProportion() float64 {
	return ratio(s.ShortLivedSubSec, s.ShortLived)
}

// add folds one classified flow into the summary.
func (s *Summary) add(f *Flow) {
	if f.Class() == LongLived {
		s.LongLived++
		return
	}
	s.ShortLived++
	d := f.Duration()
	s.ShortLivedDuration = append(s.ShortLivedDuration, d)
	if d < time.Second {
		s.ShortLivedSubSec++
	} else {
		s.ShortLivedOverSec++
	}
}

// Merge returns the element-wise sum of two summaries (shard merging).
func (s Summary) Merge(o Summary) Summary {
	s.ShortLived += o.ShortLived
	s.ShortLivedSubSec += o.ShortLivedSubSec
	s.ShortLivedOverSec += o.ShortLivedOverSec
	s.LongLived += o.LongLived
	merged := make([]time.Duration, 0, len(s.ShortLivedDuration)+len(o.ShortLivedDuration))
	merged = append(merged, s.ShortLivedDuration...)
	merged = append(merged, o.ShortLivedDuration...)
	s.ShortLivedDuration = merged
	return s
}

// Summarize classifies every flow, including any evicted ones.
func (t *Tracker) Summarize() Summary {
	s := Summary{
		ShortLived:         t.evicted.ShortLived,
		ShortLivedSubSec:   t.evicted.ShortLivedSubSec,
		ShortLivedOverSec:  t.evicted.ShortLivedOverSec,
		LongLived:          t.evicted.LongLived,
		ShortLivedDuration: append([]time.Duration(nil), t.evicted.ShortLivedDuration...),
	}
	for _, f := range t.order {
		s.add(f)
	}
	return s
}

// SessionKey identifies a session per the paper's definition: all
// packets sent in one direction between the same pair of endpoints
// (IP-level, so reconnections with fresh ports belong to one session).
type SessionKey struct {
	Src, Dst netip.Addr
}

// Session accumulates one direction of communication between two hosts.
type Session struct {
	Key          SessionKey
	Packets      int
	Bytes        int
	First, Last  time.Time
	interArrival []float64 // seconds between consecutive packets
	lastSeen     time.Time
}

// InterArrivals returns a copy of the gaps (in seconds) between
// consecutive packets of the session.
func (s *Session) InterArrivals() []float64 {
	return append([]float64(nil), s.interArrival...)
}

// MeanInterArrival returns the average spacing between consecutive
// packets in seconds (the Δt clustering feature).
func (s *Session) MeanInterArrival() float64 {
	if len(s.interArrival) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.interArrival {
		sum += v
	}
	return sum / float64(len(s.interArrival))
}

// Sessions groups packets into directional host-pair sessions.
type Sessions struct {
	m     map[SessionKey]*Session
	order []*Session
	// last memoizes the two most recent lookups: sessions are
	// directional, so request/response traffic alternates between
	// exactly two keys.
	last [2]*Session
}

// NewSessions returns an empty session table.
func NewSessions() *Sessions {
	return &Sessions{m: make(map[SessionKey]*Session)}
}

// Feed ingests one decoded packet.
func (ss *Sessions) Feed(pkt pcap.Packet) *Session {
	key := SessionKey{Src: pkt.IP.Src, Dst: pkt.IP.Dst}
	var s *Session
	switch {
	case ss.last[0] != nil && ss.last[0].Key == key:
		s = ss.last[0]
	case ss.last[1] != nil && ss.last[1].Key == key:
		s = ss.last[1]
	default:
		var ok bool
		s, ok = ss.m[key]
		if !ok {
			s = &Session{Key: key, First: pkt.Info.Timestamp}
			ss.m[key] = s
			ss.order = append(ss.order, s)
		}
		ss.last[0], ss.last[1] = s, ss.last[0]
	}
	if s.Packets > 0 {
		s.interArrival = append(s.interArrival, pkt.Info.Timestamp.Sub(s.lastSeen).Seconds())
	}
	s.Packets++
	s.Bytes += len(pkt.IP.Payload)
	s.Last = pkt.Info.Timestamp
	s.lastSeen = pkt.Info.Timestamp
	return s
}

// All returns the sessions in first-seen order.
func (ss *Sessions) All() []*Session { return ss.order }

// Sorted returns the sessions ordered by (src, dst) for deterministic
// reports.
func (ss *Sessions) Sorted() []*Session {
	out := append([]*Session(nil), ss.order...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if c := a.Src.Compare(b.Src); c != 0 {
			return c < 0
		}
		return a.Dst.Compare(b.Dst) < 0
	})
	return out
}
