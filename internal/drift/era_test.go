package drift

import (
	"bytes"
	"net/netip"
	"sync"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// era is one synthesized capture campaign: the paper's Nov 2017 (Y1)
// or Mar 2019 (Y2) measurement, as a raw capture plus the merged
// profile the pipeline persists.
type era struct {
	label   string
	capture []byte
	names   map[netip.Addr]string
	profile *Profile
}

var (
	eraMu    sync.Mutex
	eraCache = map[topology.Year]*era{}
)

// getEra synthesizes (once per test binary) a full default-length
// capture for the year: long enough that the C2-O30 misconfigured
// 430 s re-dial timer produces several attempts in Y1.
func getEra(t testing.TB, year topology.Year) *era {
	t.Helper()
	eraMu.Lock()
	defer eraMu.Unlock()
	if e, ok := eraCache[year]; ok {
		return e
	}
	cfg := scadasim.DefaultConfig(year, 1)
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatalf("write pcap: %v", err)
	}
	e := &era{
		label:   map[topology.Year]string{topology.Y1: "2017-11", topology.Y2: "2019-03"}[year],
		capture: buf.Bytes(),
		names:   core.NamesFromTopology(sim.Network()),
	}
	a := e.analyze(t)
	// MergePartials canonicalises ordering the same way the streaming
	// engine does for its rolling profiles.
	part := core.MergePartials([]core.Partial{a.Partial()})
	e.profile = NewProfile(e.label, "scadasim", part, time.Date(2019, 3, 20, 12, 0, 0, 0, time.UTC))
	eraCache[year] = e
	return e
}

// analyze runs a fresh offline analyzer over the era's capture.
func (e *era) analyze(t testing.TB) *core.Analyzer {
	t.Helper()
	a := core.NewAnalyzer(e.names)
	if err := a.ReadPCAP(bytes.NewReader(e.capture)); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}
