package drift

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"uncharted/internal/topology"
)

// TestProfileRoundTripBitExact is the codec's core guarantee:
// save -> load -> save produces identical bytes.
func TestProfileRoundTripBitExact(t *testing.T) {
	for _, year := range []topology.Year{topology.Y1, topology.Y2} {
		p := getEra(t, year).profile
		first := p.Encode()
		decoded, err := DecodeProfile(first)
		if err != nil {
			t.Fatalf("%v: decode: %v", year, err)
		}
		second := decoded.Encode()
		if !bytes.Equal(first, second) {
			t.Fatalf("%v: re-encoded profile differs (%d vs %d bytes)", year, len(first), len(second))
		}
	}
}

// TestProfileRoundTripPreservesReports checks the decoded state drives
// every §6 report identically to the original.
func TestProfileRoundTripPreservesReports(t *testing.T) {
	p := getEra(t, topology.Y1).profile
	decoded, err := DecodeProfile(p.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	a, b := &p.Partial, &decoded.Partial
	if !reflect.DeepEqual(a.ComplianceReport(), b.ComplianceReport()) {
		t.Error("compliance report changed across round trip")
	}
	if !reflect.DeepEqual(a.TypeDistribution(), b.TypeDistribution()) {
		t.Error("type distribution changed across round trip")
	}
	if !reflect.DeepEqual(a.FlowReport(), b.FlowReport()) {
		t.Error("flow report changed across round trip")
	}
	if !reflect.DeepEqual(a.Features, b.Features) {
		t.Error("session features changed across round trip")
	}
	if !reflect.DeepEqual(a.Physical, b.Physical) {
		t.Error("physical digests changed across round trip")
	}
	if len(a.Chains) != len(b.Chains) {
		t.Fatalf("chain count %d -> %d", len(a.Chains), len(b.Chains))
	}
	for i := range a.Chains {
		ca, cb := a.Chains[i], b.Chains[i]
		if ca.Key != cb.Key || ca.Server != cb.Server || ca.Outstation != cb.Outstation {
			t.Fatalf("chain %d identity changed", i)
		}
		if !reflect.DeepEqual(ca.Chain.State(), cb.Chain.State()) {
			t.Errorf("chain %s>%s state changed across round trip", ca.Server, ca.Outstation)
		}
	}
	// And the comparison engine agrees the two are the same network.
	rep := Compare(p, decoded, DefaultThresholds())
	if len(rep.Findings) != 0 {
		t.Errorf("round-tripped profile drifted from itself: %v", rep.Findings)
	}
}

// TestDecodeRejectsCorruption: bit flips anywhere in the file must be
// caught (the CRC covers header and payload), truncations must error,
// and neither may panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := getEra(t, topology.Y2).profile.Encode()
	if _, err := DecodeProfile(data); err != nil {
		t.Fatalf("pristine decode: %v", err)
	}
	step := len(data)/64 + 1
	for pos := 0; pos < len(data); pos += step {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x40
		if _, err := DecodeProfile(corrupt); err == nil {
			t.Fatalf("bit flip at %d/%d went undetected", pos, len(data))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
	for _, n := range []int{0, 1, len(data) / 3, len(data) - 5, len(data) - 1} {
		if _, err := DecodeProfile(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

// TestDecodeKindMismatch: a profile container is not a baseline and
// vice versa.
func TestDecodeKindMismatch(t *testing.T) {
	profBytes := getEra(t, topology.Y1).profile.Encode()
	if _, err := DecodeBaseline(profBytes); err == nil {
		t.Fatal("profile container decoded as baseline")
	}
}

// TestDecodeVersionGate: files from a newer schema are rejected, not
// misread.
func TestDecodeVersionGate(t *testing.T) {
	var out []byte
	out = append(out, magic...)
	out = binary.AppendUvarint(out, Version+1)
	out = append(out, byte(KindProfile))
	out = binary.AppendUvarint(out, 0)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
	if _, err := DecodeProfile(out); err == nil {
		t.Fatal("newer schema version accepted")
	}
}
