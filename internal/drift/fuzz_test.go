package drift

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/physical"
	"uncharted/internal/tcpflow"
)

// seedProfile builds a tiny handcrafted profile exercising every
// payload section, so the fuzz corpus starts from structurally valid
// bytes rather than relying on the fuzzer to discover the framing.
func seedProfile() *Profile {
	ch := markov.NewChain()
	ch.Add([]iec104.Token{iec104.TokenStartDTAct, iec104.TokenStartDTCon, iec104.TokenInterro, iec104.TokenS})
	base := time.Date(2017, 11, 7, 9, 0, 0, 0, time.UTC)
	p := core.Partial{
		Packets:    42,
		IECPackets: 40,
		First:      base,
		Last:       base.Add(90 * time.Second),
		Flows: tcpflow.Summary{
			ShortLived: 2, ShortLivedSubSec: 1, ShortLivedOverSec: 1, LongLived: 1,
			ShortLivedDuration: []time.Duration{120 * time.Millisecond, 3 * time.Second},
		},
		Compliance: []core.StationCompliance{{
			Addr: netip.MustParseAddr("10.0.1.30"), Name: "O30", Frames: 40,
			StrictInvalid: 2, Profile: iec104.LegacyCOT, Detected: true,
		}},
		TypeCounts: map[iec104.TypeID]int{iec104.MMeTf: 30, iec104.CIcNa: 2},
		TotalASDUs: 32,
		Chains: []core.ConnChain{{
			Key: core.ConnKey{
				Server:     netip.MustParseAddr("10.0.0.2"),
				Outstation: netip.MustParseAddr("10.0.1.30"),
			},
			Server: "C2", Outstation: "O30", Chain: ch,
		}},
		Features: []core.SessionFeature{{
			Src: "C2", Dst: "O30", DeltaT: 30, Num: 40, PctI: 0.8, PctS: 0.1, PctU: 0.1,
		}},
		Physical: []physical.Digest{{
			Key: physical.SeriesKey{Station: "O30", IOA: 1201}, Type: physical.IEC104Type(iec104.MMeTf),
			Count: 30, Min: 59.9, Max: 60.1, Mean: 60.0, M2: 0.01,
			First: base, Last: base.Add(80 * time.Second),
		}},
		OtherPorts: map[uint16]int{443: 10},
	}
	return NewProfile("seed", "handcrafted", p, base.Add(time.Hour))
}

// FuzzDecodeProfile drives the container and payload decoders with
// arbitrary bytes. The decoder must never panic or over-allocate, and
// anything it accepts must re-encode stably (encode(decode(x)) is a
// fixed point).
func FuzzDecodeProfile(f *testing.F) {
	valid := seedProfile().Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:len(valid)/2])
	truncTail := append([]byte(nil), valid[:len(valid)-2]...)
	f.Add(truncTail)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(data)
		if err != nil {
			return
		}
		first := p.Encode()
		p2, err := DecodeProfile(first)
		if err != nil {
			t.Fatalf("re-decode of accepted profile failed: %v", err)
		}
		if second := p2.Encode(); !bytes.Equal(first, second) {
			t.Fatalf("encode(decode(x)) is not a fixed point: %d vs %d bytes", len(first), len(second))
		}
	})
}

// TestSeedProfileRoundTrips keeps the fuzz seed itself honest under
// `go test` (the fuzz target only runs seeds in fuzz mode -run).
func TestSeedProfileRoundTrips(t *testing.T) {
	p := seedProfile()
	first := p.Encode()
	decoded, err := DecodeProfile(first)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(first, decoded.Encode()) {
		t.Fatal("seed profile does not round trip bit-exactly")
	}
}
