// Package drift is the longitudinal half of the measurement pipeline:
// it persists a capture's full merged analyzer state (core.Partial —
// per-endpoint compliance, per-connection Markov chains, session
// features, physical digests, flow taxonomy) as a versioned, CRC'd
// profile file, and statistically compares two profiles the way the
// paper compares its Nov 2017 and Mar 2019 captures (§6): topology
// churn, Jensen–Shannon divergence of per-connection token models,
// Kolmogorov–Smirnov shifts of timing distributions, compliance-flag
// churn and physical operating-range drift, each graded by severity
// thresholds.
//
// The same codec persists a trained ids.Baseline, so live monitors
// restart from a stored whitelist without re-reading the training
// capture.
package drift

import (
	"fmt"
	"os"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/ids"
)

// Meta describes where a profile came from.
type Meta struct {
	// Label names the capture era (e.g. "2017-11" / "2019-03").
	Label string `json:"label"`
	// Source is the capture path or feed description.
	Source string `json:"source,omitempty"`
	// SavedAt is when the profile was written.
	SavedAt time.Time `json:"saved_at"`
}

// Profile is one capture's persisted behavioral profile.
type Profile struct {
	Meta    Meta
	Partial core.Partial
}

// NewProfile wraps a merged analyzer snapshot for persistence.
func NewProfile(label, source string, p core.Partial, at time.Time) *Profile {
	return &Profile{Meta: Meta{Label: label, Source: source, SavedAt: at}, Partial: p}
}

// SaveProfile encodes the profile and writes it to path.
func SaveProfile(path string, p *Profile) error {
	if err := os.WriteFile(path, p.Encode(), 0o644); err != nil {
		return fmt.Errorf("drift: save profile: %w", err)
	}
	return nil
}

// LoadProfile reads and decodes a profile file.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("drift: load profile: %w", err)
	}
	p, err := DecodeProfile(data)
	if err != nil {
		return nil, fmt.Errorf("drift: %s: %w", path, err)
	}
	return p, nil
}

// SaveBaseline persists a trained IDS whitelist through the same
// container format (kind baseline).
func SaveBaseline(path string, b *ids.Baseline) error {
	if err := os.WriteFile(path, EncodeBaseline(b), 0o644); err != nil {
		return fmt.Errorf("drift: save baseline: %w", err)
	}
	return nil
}

// LoadBaseline reads and decodes a persisted IDS whitelist.
func LoadBaseline(path string) (*ids.Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("drift: load baseline: %w", err)
	}
	b, err := DecodeBaseline(data)
	if err != nil {
		return nil, fmt.Errorf("drift: %s: %w", path, err)
	}
	return b, nil
}
