package drift

import (
	"fmt"
	"math"
	"sort"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/markov"
	"uncharted/internal/stats"
)

// Severity levels, matching the ids alert scale.
const (
	SevInfo     = 1
	SevWarn     = 2
	SevCritical = 3
)

// Finding kinds.
const (
	FindEndpointAdded     = "endpoint-added"
	FindEndpointRemoved   = "endpoint-removed"
	FindConnectionAdded   = "connection-added"
	FindConnectionRemoved = "connection-removed"
	FindReclassified      = "connection-reclassified"
	FindMarkov            = "markov-divergence"
	FindTiming            = "timing-shift"
	FindFlowMix           = "flow-mix"
	FindFlowDurations     = "flow-durations"
	FindInterArrival      = "interarrival-shift"
	FindTypeMix           = "asdu-type-mix"
	FindDialect           = "dialect-change"
	FindCompliance        = "compliance-churn"
	FindRange             = "range-shift"
	FindPointChurn        = "point-churn"
)

// Thresholds grade drift into findings. Values at or below a threshold
// stay silent, so two identical profiles compare to zero findings.
type Thresholds struct {
	// TransitionJSD flags a matched connection whose joint transition
	// distribution diverges by more than this many bits ([0,1]).
	TransitionJSD float64
	// CriticalJSD upgrades a Markov finding to critical.
	CriticalJSD float64
	// TimingFactor flags a matched session whose mean inter-arrival
	// changed by more than this multiple...
	TimingFactor float64
	// TimingMin ...provided the absolute shift exceeds this many
	// seconds (suppresses sub-second jitter).
	TimingMin float64
	// MinSessionAPDUs ignores sessions thinner than this for timing
	// comparison (their means are noise).
	MinSessionAPDUs float64
	// KSStat flags a Kolmogorov–Smirnov statistic above this value on
	// the flow-duration and session inter-arrival populations.
	KSStat float64
	// KSMinSamples is the smallest population KS is computed on.
	KSMinSamples int
	// FlowMixShift flags an absolute change in the short-lived flow
	// proportion beyond this value.
	FlowMixShift float64
	// TypeMixJSD flags a global ASDU type-distribution divergence
	// beyond this many bits.
	TypeMixJSD float64
	// RangeMargin widens a point's baseline [min,max] envelope by this
	// fraction of its span before a range-shift fires, mirroring the
	// ids scan margin.
	RangeMargin float64
	// StrictInvalidShift flags a change in an endpoint's strict-parse
	// failure rate beyond this absolute value (a compliance flip).
	StrictInvalidShift float64
}

// DefaultThresholds returns the grading used by the CLIs and the
// stream engine unless overridden.
func DefaultThresholds() Thresholds {
	return Thresholds{
		TransitionJSD:      0.15,
		CriticalJSD:        0.5,
		TimingFactor:       4,
		TimingMin:          2,
		MinSessionAPDUs:    4,
		KSStat:             0.25,
		KSMinSamples:       8,
		FlowMixShift:       0.1,
		TypeMixJSD:         0.05,
		RangeMargin:        0.25,
		StrictInvalidShift: 0.05,
	}
}

// Finding is one graded drift observation.
type Finding struct {
	Kind     string `json:"kind"`
	Severity int    `json:"severity"`
	Subject  string `json:"subject"`
	Detail   string `json:"detail"`
	// Score is the metric that crossed its threshold (JSD bits, KS
	// statistic, timing factor, ...), for machine consumers.
	Score float64 `json:"score,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("[sev%d %s] %s: %s", f.Severity, f.Kind, f.Subject, f.Detail)
}

// Summary describes one side of a comparison.
type Summary struct {
	Label       string    `json:"label"`
	SavedAt     time.Time `json:"saved_at,omitempty"`
	Packets     int       `json:"packets"`
	IECPackets  int       `json:"iec_packets"`
	Window      string    `json:"window"`
	Endpoints   int       `json:"endpoints"`
	Connections int       `json:"connections"`
	Points      int       `json:"points"`
}

// DriftReport is the structured outcome of comparing profile A
// (the baseline / older era) against profile B (the newer era).
type DriftReport struct {
	A        Summary   `json:"a"`
	B        Summary   `json:"b"`
	Findings []Finding `json:"findings"`

	// Global distribution metrics, reported even when below threshold.
	MaxTransitionJSD float64 `json:"max_transition_jsd"`
	TypeMixJSD       float64 `json:"type_mix_jsd"`
	FlowDurationKS   float64 `json:"flow_duration_ks"`
	InterArrivalKS   float64 `json:"interarrival_ks"`
}

// MaxSeverity returns the worst finding severity (0 when clean).
func (r *DriftReport) MaxSeverity() int {
	max := 0
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// CountBySeverity tallies findings per severity 1..3.
func (r *DriftReport) CountBySeverity() [4]int {
	var out [4]int
	for _, f := range r.Findings {
		if f.Severity >= 1 && f.Severity <= 3 {
			out[f.Severity]++
		}
	}
	return out
}

func summarize(p *Profile) Summary {
	s := Summary{
		Label:       p.Meta.Label,
		SavedAt:     p.Meta.SavedAt,
		Packets:     p.Partial.Packets,
		IECPackets:  p.Partial.IECPackets,
		Connections: len(p.Partial.Chains),
		Points:      len(p.Partial.Physical),
	}
	if !p.Partial.First.IsZero() {
		s.Window = p.Partial.Last.Sub(p.Partial.First).Round(time.Second).String()
	}
	s.Endpoints = len(endpointSet(&p.Partial))
	return s
}

// endpointSet collects every named endpoint: chain ends plus every
// station the compliance pass saw.
func endpointSet(p *core.Partial) map[string]bool {
	out := make(map[string]bool)
	for _, cc := range p.Chains {
		out[cc.Server] = true
		out[cc.Outstation] = true
	}
	for _, sc := range p.Compliance {
		out[sc.Name] = true
	}
	return out
}

func connLabel(server, outstation string) string { return server + ">" + outstation }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compare grades profile B against profile A. Identical profiles
// produce zero findings at any threshold setting.
func Compare(a, b *Profile, th Thresholds) *DriftReport {
	r := &DriftReport{A: summarize(a), B: summarize(b)}
	add := func(kind string, sev int, subject, detail string, score float64) {
		r.Findings = append(r.Findings, Finding{
			Kind: kind, Severity: sev, Subject: subject, Detail: detail, Score: score,
		})
	}

	pa, pb := &a.Partial, &b.Partial

	// Topology: endpoint churn.
	epA, epB := endpointSet(pa), endpointSet(pb)
	for _, name := range sortedKeys(epB) {
		if !epA[name] {
			add(FindEndpointAdded, SevWarn, name, "endpoint speaks IEC 104 but is absent from the older profile", 0)
		}
	}
	for _, name := range sortedKeys(epA) {
		if !epB[name] {
			add(FindEndpointRemoved, SevWarn, name, "endpoint from the older profile no longer appears", 0)
		}
	}

	// Topology: connection churn, plus per-connection model drift for
	// pairs present in both eras.
	connA := make(map[string]*core.ConnChain)
	for i := range pa.Chains {
		connA[connLabel(pa.Chains[i].Server, pa.Chains[i].Outstation)] = &pa.Chains[i]
	}
	connB := make(map[string]*core.ConnChain)
	for i := range pb.Chains {
		connB[connLabel(pb.Chains[i].Server, pb.Chains[i].Outstation)] = &pb.Chains[i]
	}
	for _, label := range sortedKeys(connB) {
		ccB := connB[label]
		ccA, ok := connA[label]
		if !ok {
			add(FindConnectionAdded, SevWarn, label, "server/outstation pair absent from the older profile", 0)
			continue
		}
		clA := markov.Classify11SquareEllipse(ccA.Chain)
		clB := markov.Classify11SquareEllipse(ccB.Chain)
		if clA != clB {
			add(FindReclassified, SevWarn, label,
				fmt.Sprintf("Markov class changed %s -> %s", clA, clB), 0)
		}
		jsd := markov.TransitionJSD(ccA.Chain, ccB.Chain)
		if tok := markov.TokenJSD(ccA.Chain, ccB.Chain); tok > jsd {
			jsd = tok
		}
		if jsd > r.MaxTransitionJSD {
			r.MaxTransitionJSD = jsd
		}
		if jsd > th.TransitionJSD {
			sev := SevWarn
			if jsd > th.CriticalJSD {
				sev = SevCritical
			}
			add(FindMarkov, sev, label,
				fmt.Sprintf("token-model Jensen-Shannon divergence %.3f bits", jsd), jsd)
		}
	}
	for _, label := range sortedKeys(connA) {
		if _, ok := connB[label]; !ok {
			add(FindConnectionRemoved, SevWarn, label, "server/outstation pair from the older profile no longer communicates", 0)
		}
	}

	// Timing: per-session mean inter-arrival shifts, and the KS shift
	// of the whole inter-arrival population.
	sessA := make(map[string]core.SessionFeature)
	for _, f := range pa.Features {
		sessA[connLabel(f.Src, f.Dst)] = f
	}
	var iaA, iaB []float64
	for _, f := range pa.Features {
		iaA = append(iaA, f.DeltaT)
	}
	for _, f := range pb.Features {
		iaB = append(iaB, f.DeltaT)
	}
	for _, f := range pb.Features {
		label := connLabel(f.Src, f.Dst)
		prev, ok := sessA[label]
		if !ok || f.Num < th.MinSessionAPDUs || prev.Num < th.MinSessionAPDUs {
			continue
		}
		lo, hi := prev.DeltaT, f.DeltaT
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo <= 0 || hi-lo < th.TimingMin {
			continue
		}
		if factor := hi / lo; factor > th.TimingFactor {
			sev := SevWarn
			if factor > 8*th.TimingFactor {
				sev = SevCritical
			}
			add(FindTiming, sev, label,
				fmt.Sprintf("mean inter-arrival %.3gs -> %.3gs (x%.1f)", prev.DeltaT, f.DeltaT, factor), factor)
		}
	}
	if len(iaA) >= th.KSMinSamples && len(iaB) >= th.KSMinSamples {
		if d, err := stats.KolmogorovSmirnov(iaA, iaB); err == nil {
			r.InterArrivalKS = d
			if d > th.KSStat {
				add(FindInterArrival, SevWarn, "sessions",
					fmt.Sprintf("session inter-arrival distribution KS=%.3f (p=%.2g)",
						d, stats.KSSignificance(d, len(iaA), len(iaB))), d)
			}
		}
	}

	// Flow taxonomy: short/long mix and the short-lived duration
	// distribution.
	if pa.Flows.Total() > 0 && pb.Flows.Total() > 0 {
		sa, sb := pa.Flows.ShortProportion(), pb.Flows.ShortProportion()
		if shift := math.Abs(sa - sb); shift > th.FlowMixShift {
			add(FindFlowMix, SevWarn, "flows",
				fmt.Sprintf("short-lived flow share %.0f%% -> %.0f%%", 100*sa, 100*sb), shift)
		}
	}
	if len(pa.Flows.ShortLivedDuration) >= th.KSMinSamples && len(pb.Flows.ShortLivedDuration) >= th.KSMinSamples {
		da := make([]float64, len(pa.Flows.ShortLivedDuration))
		for i, d := range pa.Flows.ShortLivedDuration {
			da[i] = d.Seconds()
		}
		db := make([]float64, len(pb.Flows.ShortLivedDuration))
		for i, d := range pb.Flows.ShortLivedDuration {
			db[i] = d.Seconds()
		}
		if d, err := stats.KolmogorovSmirnov(da, db); err == nil {
			r.FlowDurationKS = d
			if d > th.KSStat {
				add(FindFlowDurations, SevWarn, "flows",
					fmt.Sprintf("short-lived duration distribution KS=%.3f (p=%.2g)",
						d, stats.KSSignificance(d, len(da), len(db))), d)
			}
		}
	}

	// Global ASDU type mix (the paper found this remarkably stable
	// across its two captures, so movement here is a strong signal).
	distA := make(map[string]float64, len(pa.TypeCounts))
	for t, n := range pa.TypeCounts {
		distA[t.Acronym()] = float64(n)
	}
	distB := make(map[string]float64, len(pb.TypeCounts))
	for t, n := range pb.TypeCounts {
		distB[t.Acronym()] = float64(n)
	}
	if len(distA) > 0 || len(distB) > 0 {
		r.TypeMixJSD = stats.JensenShannon(distA, distB)
		if r.TypeMixJSD > th.TypeMixJSD {
			add(FindTypeMix, SevWarn, "asdu-types",
				fmt.Sprintf("type distribution Jensen-Shannon divergence %.3f bits", r.TypeMixJSD), r.TypeMixJSD)
		}
	}

	// Compliance churn: dialect flips and strict-parse failure rates
	// for stations seen in both eras.
	compA := make(map[string]core.StationCompliance)
	for _, sc := range pa.Compliance {
		compA[sc.Name] = sc
	}
	for _, sc := range pb.Compliance {
		prev, ok := compA[sc.Name]
		if !ok {
			continue // already an endpoint-added finding
		}
		if prev.Detected && sc.Detected && prev.Profile != sc.Profile {
			add(FindDialect, SevCritical, sc.Name,
				fmt.Sprintf("wire dialect changed %s -> %s (device replaced or reconfigured?)", prev.Profile, sc.Profile), 0)
		}
		if prev.Frames > 0 && sc.Frames > 0 {
			ra := float64(prev.StrictInvalid) / float64(prev.Frames)
			rb := float64(sc.StrictInvalid) / float64(sc.Frames)
			if shift := math.Abs(ra - rb); shift > th.StrictInvalidShift {
				add(FindCompliance, SevWarn, sc.Name,
					fmt.Sprintf("strict-parse failure rate %.0f%% -> %.0f%%", 100*ra, 100*rb), shift)
			}
		}
	}

	comparePhysical(r, pa, pb, th, add)

	sort.SliceStable(r.Findings, func(i, j int) bool {
		fi, fj := r.Findings[i], r.Findings[j]
		if fi.Severity != fj.Severity {
			return fi.Severity > fj.Severity
		}
		if fi.Kind != fj.Kind {
			return fi.Kind < fj.Kind
		}
		return fi.Subject < fj.Subject
	})
	return r
}

// comparePhysical grades operating-envelope drift per matched point
// and aggregates point churn per station (whole-station churn is
// already an endpoint finding).
func comparePhysical(r *DriftReport, pa, pb *core.Partial, th Thresholds,
	add func(kind string, sev int, subject, detail string, score float64)) {
	type pk struct {
		station string
		ioa     uint32
	}
	digA := make(map[pk]int, len(pa.Physical))
	stationsA := make(map[string]bool)
	for i, d := range pa.Physical {
		digA[pk{d.Key.Station, d.Key.IOA}] = i
		stationsA[d.Key.Station] = true
	}
	stationsB := make(map[string]bool)
	churnAdd := make(map[string]int)
	churnDel := make(map[string]int)
	seenB := make(map[pk]bool, len(pb.Physical))
	for _, d := range pb.Physical {
		stationsB[d.Key.Station] = true
		key := pk{d.Key.Station, d.Key.IOA}
		seenB[key] = true
		i, ok := digA[key]
		if !ok {
			if stationsA[d.Key.Station] {
				churnAdd[d.Key.Station]++
			}
			continue
		}
		prev := pa.Physical[i]
		span := prev.Max - prev.Min
		margin := th.RangeMargin * span
		if floor := 0.05 * math.Max(math.Abs(prev.Min), math.Abs(prev.Max)); margin < floor {
			margin = floor
		}
		if margin < 0.01 {
			margin = 0.01
		}
		if d.Min < prev.Min-margin || d.Max > prev.Max+margin {
			sev := SevWarn
			if d.Command {
				sev = SevCritical
			}
			score := math.Max(prev.Min-d.Min, d.Max-prev.Max)
			add(FindRange, sev, fmt.Sprintf("%s/%d", d.Key.Station, d.Key.IOA),
				fmt.Sprintf("operating range [%.4g, %.4g] -> [%.4g, %.4g]", prev.Min, prev.Max, d.Min, d.Max), score)
		} else if shift := math.Abs(d.Mean - prev.Mean); span > 0 && shift > th.RangeMargin*span {
			add(FindRange, SevWarn, fmt.Sprintf("%s/%d", d.Key.Station, d.Key.IOA),
				fmt.Sprintf("mean moved %.4g -> %.4g against span %.4g", prev.Mean, d.Mean, span), shift)
		}
	}
	for key := range digA {
		if !seenB[key] && stationsB[key.station] {
			churnDel[key.station]++
		}
	}
	stations := make(map[string]bool, len(churnAdd)+len(churnDel))
	for s := range churnAdd {
		stations[s] = true
	}
	for s := range churnDel {
		stations[s] = true
	}
	for _, s := range sortedKeys(stations) {
		add(FindPointChurn, SevInfo, s,
			fmt.Sprintf("%d points added, %d removed (reporting configuration change)", churnAdd[s], churnDel[s]),
			float64(churnAdd[s]+churnDel[s]))
	}
}
