package drift

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"uncharted/internal/ids"
	"uncharted/internal/topology"
)

// TestBaselineRoundTrip: persisting a trained whitelist and restoring
// it must change neither its bytes (save -> load -> save) nor its
// verdicts (Scan of a later capture produces identical alerts).
func TestBaselineRoundTrip(t *testing.T) {
	y1 := getEra(t, topology.Y1)
	y2 := getEra(t, topology.Y2)
	base, err := ids.Train(y1.analyze(t))
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	first := EncodeBaseline(base)
	restored, err := DecodeBaseline(first)
	if err != nil {
		t.Fatalf("decode baseline: %v", err)
	}
	second := EncodeBaseline(restored)
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encoded baseline differs (%d vs %d bytes)", len(first), len(second))
	}
	if !reflect.DeepEqual(base.State(), restored.State()) {
		t.Fatal("restored baseline state differs")
	}

	scanned := y2.analyze(t)
	want := base.Scan(scanned)
	got := restored.Scan(scanned)
	if len(want) == 0 {
		t.Fatal("era scan produced no alerts; scenario too weak to validate persistence")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored baseline scans differently: %d vs %d alerts", len(want), len(got))
	}
}

// TestBaselineSaveLoadFile covers the file-level helpers.
func TestBaselineSaveLoadFile(t *testing.T) {
	y1 := getEra(t, topology.Y1)
	base, err := ids.Train(y1.analyze(t))
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.prof")
	if err := SaveBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	e1, c1, p1 := base.Size()
	e2, c2, p2 := loaded.Size()
	if e1 != e2 || c1 != c2 || p1 != p2 {
		t.Fatalf("loaded baseline size (%d,%d,%d) != trained (%d,%d,%d)", e2, c2, p2, e1, c1, p1)
	}
}

// TestProfileSaveLoadFile covers the profile file helpers.
func TestProfileSaveLoadFile(t *testing.T) {
	p := getEra(t, topology.Y2).profile
	path := filepath.Join(t.TempDir(), "era.prof")
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Meta != p.Meta {
		t.Fatalf("meta changed: %+v vs %+v", loaded.Meta, p.Meta)
	}
	if !bytes.Equal(loaded.Encode(), p.Encode()) {
		t.Fatal("loaded profile encodes differently")
	}
}
