package drift

import (
	"encoding/json"
	"fmt"
	"io"

	"uncharted/internal/ids"
)

// WriteJSON renders the report as indented JSON.
func (r *DriftReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report the way the CLIs print it: the two
// profile summaries, the global metrics, then findings grouped by
// severity (worst first). A clean comparison says so explicitly.
func (r *DriftReport) WriteText(w io.Writer) {
	side := func(tag string, s Summary) {
		fmt.Fprintf(w, "  %s %-12s packets=%d iec=%d window=%s endpoints=%d conns=%d points=%d\n",
			tag, s.Label, s.Packets, s.IECPackets, s.Window, s.Endpoints, s.Connections, s.Points)
	}
	fmt.Fprintln(w, "== Drift report ==")
	side("A:", r.A)
	side("B:", r.B)
	fmt.Fprintf(w, "  metrics: max-transition-jsd=%.3f type-mix-jsd=%.3f flow-ks=%.3f interarrival-ks=%.3f\n",
		r.MaxTransitionJSD, r.TypeMixJSD, r.FlowDurationKS, r.InterArrivalKS)
	if len(r.Findings) == 0 {
		fmt.Fprintln(w, "  no drift above thresholds")
		return
	}
	counts := r.CountBySeverity()
	fmt.Fprintf(w, "  findings: %d (critical=%d warning=%d info=%d)\n",
		len(r.Findings), counts[SevCritical], counts[SevWarn], counts[SevInfo])
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  %s\n", f)
	}
}

// Alerts converts every finding into an ids drift alert, so stream
// deployments surface longitudinal drift through the same channel as
// the online monitors.
func (r *DriftReport) Alerts() []ids.Alert {
	out := make([]ids.Alert, 0, len(r.Findings))
	for _, f := range r.Findings {
		out = append(out, f.Alert())
	}
	return out
}

// Alert converts one finding into an ids drift alert.
func (f Finding) Alert() ids.Alert {
	return ids.Alert{
		Kind:     ids.AlertDrift,
		Severity: f.Severity,
		Subject:  f.Subject,
		Detail:   f.Kind + ": " + f.Detail,
	}
}
