package drift

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/markov"
	"uncharted/internal/protocol"
	"uncharted/internal/topology"
)

// fileVersion reads the container's schema version varint.
func fileVersion(t *testing.T, data []byte) uint64 {
	t.Helper()
	ver, n := binary.Uvarint(data[len(magic):])
	if n <= 0 {
		t.Fatal("bad version varint")
	}
	return ver
}

// IEC 104-only profiles must keep writing version-1 files: the version
// bump is conditional on multi-protocol content, so single-protocol
// archives stay byte-identical across this change.
func TestIEC104OnlyProfileStaysVersion1(t *testing.T) {
	data := getEra(t, topology.Y1).profile.Encode()
	if v := fileVersion(t, data); v != 1 {
		t.Fatalf("IEC 104-only profile sealed as version %d, want 1", v)
	}
}

func multiProtoProfile() *Profile {
	server := netip.MustParseAddr("10.0.0.1")
	pmu := netip.MustParseAddr("10.0.7.21")
	ch := markov.NewChain()
	ch.Add([]protocol.Token{
		{Proto: protocol.C37118, Kind: protocol.KindC37Config2},
		{Proto: protocol.C37118, Kind: protocol.KindC37Data},
		{Proto: protocol.C37118, Kind: protocol.KindC37Data},
	})
	p := &Profile{}
	p.Meta.Label = "mixed"
	p.Partial = core.Partial{
		Packets: 10,
		First:   time.Unix(1500000000, 0).UTC(),
		Last:    time.Unix(1500000600, 0).UTC(),
		Chains: []core.ConnChain{{
			Key:        core.ConnKey{Server: server, Outstation: pmu},
			Server:     "C1",
			Outstation: "PMU21",
			Proto:      protocol.C37118,
			Chain:      ch,
		}},
		Dialects: []core.DialectStat{{
			Proto:       protocol.C37118,
			Frames:      3,
			ParseErrors: 1,
			Bytes:       420,
			TokenCounts: map[string]int{"C2": 1, "D": 2},
		}},
		Streams: []protocol.StreamCompliance{{
			Proto:          protocol.C37118,
			Conn:           "C1-PMU21",
			Unit:           "pmu-7",
			ConfiguredRate: 25,
			ObservedRate:   24.8,
			Frames:         2,
			Compliant:      true,
			Detail:         "observed 24.80 fps vs configured 25.00 fps (-0.8%)",
		}},
	}
	return p
}

// Multi-protocol content bumps the file to version 2 and round-trips
// every appended section bit-exactly.
func TestMultiProtocolProfileRoundTrip(t *testing.T) {
	p := multiProtoProfile()
	data := p.Encode()
	if v := fileVersion(t, data); v != 2 {
		t.Fatalf("multi-protocol profile sealed as version %d, want 2", v)
	}
	decoded, err := DecodeProfile(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(data, decoded.Encode()) {
		t.Fatal("re-encoded v2 profile differs")
	}
	if !reflect.DeepEqual(decoded.Partial.Dialects, p.Partial.Dialects) {
		t.Errorf("dialect stats changed: %+v", decoded.Partial.Dialects)
	}
	if !reflect.DeepEqual(decoded.Partial.Streams, p.Partial.Streams) {
		t.Errorf("stream compliance changed: %+v", decoded.Partial.Streams)
	}
	if decoded.Partial.Chains[0].Proto != protocol.C37118 {
		t.Errorf("chain proto = %v, want c37118", decoded.Partial.Chains[0].Proto)
	}
}
