package drift

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net/netip"
	"sort"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/ids"
	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/physical"
	"uncharted/internal/protocol"
	"uncharted/internal/tcpflow"
)

// Container format: an 8-byte magic, a uvarint schema version, a kind
// byte, a uvarint payload length, the payload, and a CRC32-Castagnoli
// of everything before the checksum. Every multi-valued structure is
// written in canonical (sorted) order and every float as its IEEE 754
// bit pattern, so encoding is deterministic: save → load → save
// produces identical bytes.
const (
	magic = "UNCHDRFT"
	// Version is the newest on-disk schema version this build can
	// decode. Decoders reject files from a newer schema rather than
	// misreading them. Version 2 appends the multi-protocol sections
	// (per-dialect stats, stream compliance, per-chain dialects);
	// encoders only stamp it when that content is present, so
	// IEC 104-only profiles stay byte-identical to version 1 files.
	Version = 2
)

// Kind tags what a container holds.
type Kind byte

// Container kinds.
const (
	KindProfile  Kind = 1
	KindBaseline Kind = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every decode failure caused by the file
// content (as opposed to I/O).
var ErrCorrupt = errors.New("corrupt profile file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// seal wraps a payload in the container framing.
func seal(kind Kind, version uint64, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+24)
	out = append(out, magic...)
	out = binary.AppendUvarint(out, version)
	out = append(out, byte(kind))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	crc := crc32.Checksum(out, castagnoli)
	out = binary.LittleEndian.AppendUint32(out, crc)
	return out
}

// unseal validates the framing and returns the payload and the file's
// schema version.
func unseal(data []byte, want Kind) ([]byte, uint64, error) {
	if len(data) < len(magic)+4 {
		return nil, 0, corruptf("truncated header (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, 0, corruptf("bad magic")
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if got, wantCRC := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(crcBytes); got != wantCRC {
		return nil, 0, corruptf("crc mismatch (file %08x, computed %08x)", wantCRC, got)
	}
	rest := body[len(magic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, 0, corruptf("bad version varint")
	}
	rest = rest[n:]
	if ver == 0 || ver > Version {
		return nil, 0, corruptf("schema version %d newer than supported %d", ver, Version)
	}
	if len(rest) < 1 {
		return nil, 0, corruptf("missing kind byte")
	}
	kind := Kind(rest[0])
	rest = rest[1:]
	if kind != want {
		return nil, 0, corruptf("container holds kind %d, want %d", kind, want)
	}
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, 0, corruptf("bad payload length")
	}
	rest = rest[n:]
	if plen != uint64(len(rest)) {
		return nil, 0, corruptf("payload length %d, have %d bytes", plen, len(rest))
	}
	return rest, ver, nil
}

// enc accumulates the deterministic binary encoding.
type enc struct{ b []byte }

func (e *enc) u(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) str(s string) { e.u(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) addr(a netip.Addr) {
	b, _ := a.MarshalBinary() // never fails for netip.Addr
	e.u(uint64(len(b)))
	e.b = append(e.b, b...)
}

// time encodes zero times distinctly so they restore as time.Time{}
// rather than the unix epoch's representation of zero.
func (e *enc) time(t time.Time) {
	if t.IsZero() {
		e.bool(false)
		return
	}
	e.bool(true)
	e.i(t.UnixNano())
}

// dec walks the payload, remembering the first error; all reads after
// a failure return zero values, so decode code needs no per-field
// error plumbing. Length fields are validated against the remaining
// bytes before any allocation, which keeps fuzzed inputs from forcing
// huge allocations.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) f() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("truncated bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

func (d *dec) str() string {
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds %d remaining bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) addr() netip.Addr {
	n := d.u()
	if d.err != nil {
		return netip.Addr{}
	}
	if n > uint64(len(d.b)) {
		d.fail("address length %d exceeds %d remaining bytes", n, len(d.b))
		return netip.Addr{}
	}
	a, ok := netip.AddrFromSlice(d.b[:n])
	if !ok && n != 0 {
		d.fail("bad address of %d bytes", n)
	}
	d.b = d.b[n:]
	return a
}

func (d *dec) time() time.Time {
	if !d.bool() {
		return time.Time{}
	}
	return time.Unix(0, d.i()).UTC()
}

// count reads a collection length and bounds it by the remaining
// payload, given the minimum encoded size of one element.
func (d *dec) count(minElem int) int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if n > uint64(len(d.b)/minElem) {
		d.fail("collection of %d elements cannot fit in %d remaining bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *dec) token() iec104.Token {
	s := d.str()
	if d.err != nil {
		return iec104.Token{}
	}
	// Tokens serialize as their textual form, so the multi-protocol
	// grammar decodes through the same path; IEC 104 strings parse to
	// tokens identical to the pre-multi-protocol ones.
	t, err := protocol.ParseToken(s)
	if err != nil {
		d.fail("bad token %q", s)
		return iec104.Token{}
	}
	return t
}

// profileVersion picks the schema version a profile needs: version 2
// only when multi-protocol content is present, so IEC 104-only
// profiles keep producing version-1 files byte for byte.
func profileVersion(p *core.Partial) uint64 {
	if len(p.Dialects) > 0 || len(p.Streams) > 0 {
		return 2
	}
	for _, cc := range p.Chains {
		if cc.Proto != 0 {
			return 2
		}
	}
	return 1
}

// Encode serializes the profile.
func (p *Profile) Encode() []byte {
	ver := profileVersion(&p.Partial)
	var e enc
	e.str(p.Meta.Label)
	e.str(p.Meta.Source)
	e.time(p.Meta.SavedAt)
	encodePartial(&e, &p.Partial, ver)
	return seal(KindProfile, ver, e.b)
}

// DecodeProfile parses a profile container.
func DecodeProfile(data []byte) (*Profile, error) {
	payload, ver, err := unseal(data, KindProfile)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	var p Profile
	p.Meta.Label = d.str()
	p.Meta.Source = d.str()
	p.Meta.SavedAt = d.time()
	p.Partial = decodePartial(d, ver)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, corruptf("%d trailing payload bytes", len(d.b))
	}
	return &p, nil
}

func encodePartial(e *enc, p *core.Partial, ver uint64) {
	e.u(uint64(p.Packets))
	e.u(uint64(p.IECPackets))
	e.u(uint64(p.ParseErrors))
	e.u(uint64(p.SeqAnomalies))
	e.u(uint64(p.TotalASDUs))
	e.u(uint64(p.FlowsEvicted))
	e.time(p.First)
	e.time(p.Last)

	e.u(uint64(p.Flows.ShortLived))
	e.u(uint64(p.Flows.ShortLivedSubSec))
	e.u(uint64(p.Flows.ShortLivedOverSec))
	e.u(uint64(p.Flows.LongLived))
	e.u(uint64(len(p.Flows.ShortLivedDuration)))
	for _, dur := range p.Flows.ShortLivedDuration {
		e.i(int64(dur))
	}

	e.u(uint64(len(p.Compliance)))
	for _, sc := range p.Compliance {
		e.addr(sc.Addr)
		e.str(sc.Name)
		e.u(uint64(sc.Frames))
		e.u(uint64(sc.StrictInvalid))
		e.u(uint64(sc.Profile.COTSize))
		e.u(uint64(sc.Profile.CommonAddrSize))
		e.u(uint64(sc.Profile.IOASize))
		e.bool(sc.Detected)
	}

	types := make([]iec104.TypeID, 0, len(p.TypeCounts))
	for t := range p.TypeCounts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	e.u(uint64(len(types)))
	for _, t := range types {
		e.u(uint64(t))
		e.u(uint64(p.TypeCounts[t]))
	}

	e.u(uint64(len(p.Chains)))
	for _, cc := range p.Chains {
		e.addr(cc.Key.Server)
		e.addr(cc.Key.Outstation)
		e.str(cc.Server)
		e.str(cc.Outstation)
		e.u(uint64(cc.Cluster))
		st := cc.Chain.State()
		e.u(uint64(len(st.Nodes)))
		for _, nc := range st.Nodes {
			e.str(nc.Token.String())
			e.u(uint64(nc.Count))
		}
		e.u(uint64(len(st.Edges)))
		for _, ec := range st.Edges {
			e.str(ec.From.String())
			e.str(ec.To.String())
			e.u(uint64(ec.Count))
		}
	}

	e.u(uint64(len(p.Features)))
	for _, f := range p.Features {
		e.str(f.Src)
		e.str(f.Dst)
		e.f(f.DeltaT)
		e.f(f.Num)
		e.f(f.PctI)
		e.f(f.PctS)
		e.f(f.PctU)
	}

	e.u(uint64(len(p.Physical)))
	for _, dg := range p.Physical {
		e.str(dg.Key.Station)
		e.u(uint64(dg.Key.IOA))
		e.u(uint64(dg.Type))
		e.bool(dg.Command)
		e.u(uint64(dg.Count))
		e.f(dg.Min)
		e.f(dg.Max)
		e.f(dg.Mean)
		e.f(dg.M2)
		e.time(dg.First)
		e.time(dg.Last)
	}

	ports := make([]uint16, 0, len(p.OtherPorts))
	for port := range p.OtherPorts {
		ports = append(ports, port)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	e.u(uint64(len(ports)))
	for _, port := range ports {
		e.u(uint64(port))
		e.u(uint64(p.OtherPorts[port]))
	}

	if ver < 2 {
		return
	}
	// Version 2: multi-protocol sections, appended after the full v1
	// layout so version-1 decoding logic is a strict prefix.

	// Per-chain dialects, positional with the Chains section above.
	e.u(uint64(len(p.Chains)))
	for _, cc := range p.Chains {
		e.u(uint64(cc.Proto))
	}

	e.u(uint64(len(p.Dialects)))
	for _, ds := range p.Dialects {
		e.u(uint64(ds.Proto))
		e.u(uint64(ds.Frames))
		e.u(uint64(ds.ParseErrors))
		e.u(uint64(ds.Bytes))
		toks := make([]string, 0, len(ds.TokenCounts))
		for t := range ds.TokenCounts {
			toks = append(toks, t)
		}
		sort.Strings(toks)
		e.u(uint64(len(toks)))
		for _, t := range toks {
			e.str(t)
			e.u(uint64(ds.TokenCounts[t]))
		}
	}

	e.u(uint64(len(p.Streams)))
	for _, sc := range p.Streams {
		e.u(uint64(sc.Proto))
		e.str(sc.Conn)
		e.str(sc.Unit)
		e.f(sc.ConfiguredRate)
		e.f(sc.ObservedRate)
		e.u(uint64(sc.Frames))
		e.u(uint64(sc.Errors))
		e.bool(sc.Compliant)
		e.str(sc.Detail)
	}
}

func decodePartial(d *dec, ver uint64) core.Partial {
	var p core.Partial
	p.Packets = int(d.u())
	p.IECPackets = int(d.u())
	p.ParseErrors = int(d.u())
	p.SeqAnomalies = int(d.u())
	p.TotalASDUs = int(d.u())
	p.FlowsEvicted = int(d.u())
	p.First = d.time()
	p.Last = d.time()

	p.Flows = tcpflow.Summary{
		ShortLived:        int(d.u()),
		ShortLivedSubSec:  int(d.u()),
		ShortLivedOverSec: int(d.u()),
		LongLived:         int(d.u()),
	}
	if n := d.count(1); n > 0 {
		p.Flows.ShortLivedDuration = make([]time.Duration, n)
		for i := range p.Flows.ShortLivedDuration {
			p.Flows.ShortLivedDuration[i] = time.Duration(d.i())
		}
	}

	if n := d.count(8); n > 0 {
		p.Compliance = make([]core.StationCompliance, n)
		for i := range p.Compliance {
			sc := &p.Compliance[i]
			sc.Addr = d.addr()
			sc.Name = d.str()
			sc.Frames = int(d.u())
			sc.StrictInvalid = int(d.u())
			sc.Profile.COTSize = int(d.u())
			sc.Profile.CommonAddrSize = int(d.u())
			sc.Profile.IOASize = int(d.u())
			sc.Detected = d.bool()
		}
	}

	p.TypeCounts = make(map[iec104.TypeID]int)
	for i, n := 0, d.count(2); i < n; i++ {
		t := iec104.TypeID(d.u())
		p.TypeCounts[t] = int(d.u())
	}

	if n := d.count(8); n > 0 {
		p.Chains = make([]core.ConnChain, n)
		for i := range p.Chains {
			cc := &p.Chains[i]
			cc.Key.Server = d.addr()
			cc.Key.Outstation = d.addr()
			cc.Server = d.str()
			cc.Outstation = d.str()
			cc.Cluster = markov.SizeCluster(d.u())
			var st markov.ChainState
			if nn := d.count(3); nn > 0 {
				st.Nodes = make([]markov.TokenCount, nn)
				for j := range st.Nodes {
					st.Nodes[j].Token = d.token()
					st.Nodes[j].Count = int(d.u())
				}
			}
			if ne := d.count(5); ne > 0 {
				st.Edges = make([]markov.EdgeCount, ne)
				for j := range st.Edges {
					st.Edges[j].From = d.token()
					st.Edges[j].To = d.token()
					st.Edges[j].Count = int(d.u())
				}
			}
			cc.Chain = markov.ChainFromState(st)
		}
	}

	if n := d.count(42); n > 0 {
		p.Features = make([]core.SessionFeature, n)
		for i := range p.Features {
			f := &p.Features[i]
			f.Src = d.str()
			f.Dst = d.str()
			f.DeltaT = d.f()
			f.Num = d.f()
			f.PctI = d.f()
			f.PctS = d.f()
			f.PctU = d.f()
		}
	}

	if n := d.count(40); n > 0 {
		p.Physical = make([]physical.Digest, n)
		for i := range p.Physical {
			dg := &p.Physical[i]
			dg.Key.Station = d.str()
			dg.Key.IOA = uint32(d.u())
			dg.Type = physical.PointType(d.u())
			dg.Command = d.bool()
			dg.Count = int(d.u())
			dg.Min = d.f()
			dg.Max = d.f()
			dg.Mean = d.f()
			dg.M2 = d.f()
			dg.First = d.time()
			dg.Last = d.time()
		}
	}

	p.OtherPorts = make(map[uint16]int)
	for i, n := 0, d.count(2); i < n; i++ {
		port := uint16(d.u())
		p.OtherPorts[port] = int(d.u())
	}
	if ver < 2 {
		return p
	}

	if n := d.count(1); n > 0 {
		if n != len(p.Chains) {
			d.fail("chain dialect section covers %d chains, profile has %d", n, len(p.Chains))
			return p
		}
		for i := range p.Chains {
			p.Chains[i].Proto = protocol.ID(d.u())
		}
	}

	if n := d.count(4); n > 0 {
		p.Dialects = make([]core.DialectStat, n)
		for i := range p.Dialects {
			ds := &p.Dialects[i]
			ds.Proto = protocol.ID(d.u())
			ds.Frames = int(d.u())
			ds.ParseErrors = int(d.u())
			ds.Bytes = int(d.u())
			ds.TokenCounts = make(map[string]int)
			for j, nt := 0, d.count(2); j < nt; j++ {
				t := d.str()
				ds.TokenCounts[t] = int(d.u())
			}
		}
	}

	if n := d.count(20); n > 0 {
		p.Streams = make([]protocol.StreamCompliance, n)
		for i := range p.Streams {
			sc := &p.Streams[i]
			sc.Proto = protocol.ID(d.u())
			sc.Conn = d.str()
			sc.Unit = d.str()
			sc.ConfiguredRate = d.f()
			sc.ObservedRate = d.f()
			sc.Frames = int(d.u())
			sc.Errors = int(d.u())
			sc.Compliant = d.bool()
			sc.Detail = d.str()
		}
	}
	return p
}

// EncodeBaseline serializes a trained IDS whitelist.
func EncodeBaseline(b *ids.Baseline) []byte {
	s := b.State()
	var e enc
	e.f(s.PerplexityFactor)
	e.f(s.RangeMargin)
	e.f(s.WorstPerplexity)

	e.u(uint64(len(s.Endpoints)))
	for _, a := range s.Endpoints {
		e.addr(a)
	}
	e.u(uint64(len(s.Conns)))
	for _, cv := range s.Conns {
		e.str(cv.Server)
		e.str(cv.Outstation)
		e.u(uint64(len(cv.Tokens)))
		for _, t := range cv.Tokens {
			e.str(t)
		}
	}
	e.u(uint64(s.Bigram.N))
	e.u(uint64(len(s.Bigram.Counts)))
	for _, c := range s.Bigram.Counts {
		e.str(c.Key)
		e.u(uint64(c.Count))
	}
	e.u(uint64(len(s.Bigram.Contexts)))
	for _, c := range s.Bigram.Contexts {
		e.str(c.Key)
		e.u(uint64(c.Count))
	}
	e.u(uint64(len(s.Bigram.Vocab)))
	for _, t := range s.Bigram.Vocab {
		e.str(t)
	}
	e.u(uint64(len(s.Points)))
	for _, pr := range s.Points {
		e.str(pr.Station)
		e.u(uint64(pr.IOA))
		e.f(pr.Min)
		e.f(pr.Max)
		e.u(uint64(pr.Type))
		e.bool(pr.Command)
		e.u(uint64(pr.Samples))
	}
	e.u(uint64(len(s.Profiles)))
	for _, sp := range s.Profiles {
		e.str(sp.Name)
		e.u(uint64(sp.Profile.COTSize))
		e.u(uint64(sp.Profile.CommonAddrSize))
		e.u(uint64(sp.Profile.IOASize))
	}
	e.u(uint64(len(s.Rates)))
	for _, cr := range s.Rates {
		e.str(cr.Server)
		e.str(cr.Outstation)
		e.f(cr.Rate)
	}
	return seal(KindBaseline, 1, e.b)
}

// DecodeBaseline parses a baseline container and rebuilds the trained
// whitelist.
func DecodeBaseline(data []byte) (*ids.Baseline, error) {
	payload, _, err := unseal(data, KindBaseline)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	var s ids.BaselineState
	s.PerplexityFactor = d.f()
	s.RangeMargin = d.f()
	s.WorstPerplexity = d.f()

	if n := d.count(2); n > 0 {
		s.Endpoints = make([]netip.Addr, n)
		for i := range s.Endpoints {
			s.Endpoints[i] = d.addr()
		}
	}
	if n := d.count(3); n > 0 {
		s.Conns = make([]ids.ConnVocab, n)
		for i := range s.Conns {
			cv := &s.Conns[i]
			cv.Server = d.str()
			cv.Outstation = d.str()
			if nt := d.count(2); nt > 0 {
				cv.Tokens = make([]string, nt)
				for j := range cv.Tokens {
					cv.Tokens[j] = d.str()
				}
			}
		}
	}
	s.Bigram.N = int(d.u())
	if n := d.count(2); n > 0 {
		s.Bigram.Counts = make([]markov.StringCount, n)
		for i := range s.Bigram.Counts {
			s.Bigram.Counts[i].Key = d.str()
			s.Bigram.Counts[i].Count = int(d.u())
		}
	}
	if n := d.count(2); n > 0 {
		s.Bigram.Contexts = make([]markov.StringCount, n)
		for i := range s.Bigram.Contexts {
			s.Bigram.Contexts[i].Key = d.str()
			s.Bigram.Contexts[i].Count = int(d.u())
		}
	}
	if n := d.count(1); n > 0 {
		s.Bigram.Vocab = make([]string, n)
		for i := range s.Bigram.Vocab {
			s.Bigram.Vocab[i] = d.str()
		}
	}
	if n := d.count(22); n > 0 {
		s.Points = make([]ids.PointRange, n)
		for i := range s.Points {
			pr := &s.Points[i]
			pr.Station = d.str()
			pr.IOA = uint32(d.u())
			pr.Min = d.f()
			pr.Max = d.f()
			pr.Type = physical.PointType(d.u())
			pr.Command = d.bool()
			pr.Samples = int(d.u())
		}
	}
	if n := d.count(4); n > 0 {
		s.Profiles = make([]ids.StationProfile, n)
		for i := range s.Profiles {
			sp := &s.Profiles[i]
			sp.Name = d.str()
			sp.Profile.COTSize = int(d.u())
			sp.Profile.CommonAddrSize = int(d.u())
			sp.Profile.IOASize = int(d.u())
		}
	}
	if n := d.count(10); n > 0 {
		s.Rates = make([]ids.ConnRate, n)
		for i := range s.Rates {
			cr := &s.Rates[i]
			cr.Server = d.str()
			cr.Outstation = d.str()
			cr.Rate = d.f()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, corruptf("%d trailing payload bytes", len(d.b))
	}
	return ids.BaselineFromState(s)
}
