package drift

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/pcap"
	"uncharted/internal/topology"
)

func findingsOf(rep *DriftReport, kind string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// TestCompareIdenticalErasIsClean: era-A vs era-A (the profile against
// its own decoded copy) reports zero drift above threshold.
func TestCompareIdenticalErasIsClean(t *testing.T) {
	p := getEra(t, topology.Y1).profile
	decoded, err := DecodeProfile(p.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	rep := Compare(p, decoded, DefaultThresholds())
	if len(rep.Findings) != 0 {
		t.Fatalf("identical eras drifted: %v", rep.Findings)
	}
	if rep.MaxSeverity() != 0 {
		t.Errorf("max severity %d on clean comparison", rep.MaxSeverity())
	}
	if rep.MaxTransitionJSD != 0 || rep.TypeMixJSD != 0 || rep.FlowDurationKS != 0 || rep.InterArrivalKS != 0 {
		t.Errorf("nonzero metrics on identical profiles: %+v", rep)
	}
}

// TestCompareErasFlagsPlantedChanges is the paper's longitudinal
// experiment (§6, Nov 2017 vs Mar 2019) run against the simulator's
// planted era differences: topology churn (Table 2), the C2-O30
// misconfigured 430 s timer that was fixed between campaigns
// (§6.3.2), and the silent-drop stations' changed backup behavior.
func TestCompareErasFlagsPlantedChanges(t *testing.T) {
	y1 := getEra(t, topology.Y1)
	y2 := getEra(t, topology.Y2)
	rep := Compare(y1.profile, y2.profile, DefaultThresholds())
	t.Logf("era drift: %d findings, max JSD %.3f, type JSD %.3f, flow KS %.3f, ia KS %.3f",
		len(rep.Findings), rep.MaxTransitionJSD, rep.TypeMixJSD, rep.FlowDurationKS, rep.InterArrivalKS)
	for _, f := range rep.Findings {
		t.Logf("  %s", f)
	}

	// Topology churn: the simulator's Table 2 — outstations added for
	// Y2 and outstations decommissioned after Y1 — must surface as
	// endpoint churn on both sides.
	diff := topology.ComputeDiff(topology.Build())
	added := findingsOf(rep, FindEndpointAdded)
	removed := findingsOf(rep, FindEndpointRemoved)
	if len(added) == 0 || len(removed) == 0 {
		t.Fatalf("topology churn missed: %d added, %d removed findings", len(added), len(removed))
	}
	hasSubject := func(fs []Finding, name string) bool {
		for _, f := range fs {
			if f.Subject == name {
				return true
			}
		}
		return false
	}
	for _, ch := range diff.Added {
		if !hasSubject(added, string(ch.Outstation)) {
			t.Errorf("added outstation %s not flagged", ch.Outstation)
		}
	}
	for _, ch := range diff.Removed {
		if !hasSubject(removed, string(ch.Outstation)) {
			t.Errorf("removed outstation %s not flagged", ch.Outstation)
		}
	}

	// The timer fix: C2-O30's re-dial cadence collapsed from 430 s to
	// the network-wide retry interval, a timing shift on that session.
	var o30 *Finding
	for i, f := range rep.Findings {
		if f.Kind == FindTiming && strings.Contains(f.Subject, "O30") {
			o30 = &rep.Findings[i]
			break
		}
	}
	if o30 == nil {
		t.Errorf("C2-O30 timer fix not flagged as a timing shift")
	} else if o30.Score < 8 {
		t.Errorf("O30 timing shift factor %.1f, want the ~x100 collapse of the 430s timer", o30.Score)
	}

	// Reporting-mode change: the silent-drop stations leave unanswered
	// SYNs (long-lived flows) in Y1 but answer with RSTs in Y2, so the
	// short/long flow mix swings hard — that is how the backup-channel
	// behavior change surfaces.
	if len(findingsOf(rep, FindFlowMix)) == 0 {
		t.Errorf("silent-drop -> RST reporting change left no flow-mix finding")
	}
	// The Type4 stations switch primary server between eras, so
	// surviving connections change Markov class (square <-> ellipse as
	// interrogation moves to the newly active channel).
	if len(findingsOf(rep, FindReclassified)) == 0 {
		t.Errorf("primary-server switches left no reclassified connections")
	}
	// The paper found the ASDU type distribution remarkably stable
	// across its two captures; the simulator preserves that, and the
	// engine must not manufacture a type-mix finding from it.
	if rep.TypeMixJSD > DefaultThresholds().TypeMixJSD {
		t.Errorf("type mix JSD %.3f flagged despite stable distribution", rep.TypeMixJSD)
	}

	// Era comparison must never be silently clean.
	if rep.MaxSeverity() < SevWarn {
		t.Fatalf("era comparison produced no warnings")
	}
}

// TestMergeOrderDoesNotDrift: the same capture analyzed in shards and
// merged in different orders must compare as identical — shard
// scheduling noise may never masquerade as longitudinal drift.
func TestMergeOrderDoesNotDrift(t *testing.T) {
	y1 := getEra(t, topology.Y1)
	analyzers := make([]*core.Analyzer, 3)
	for i := range analyzers {
		analyzers[i] = core.NewAnalyzer(y1.names)
	}
	rd, err := pcap.NewAutoReader(bytes.NewReader(y1.capture))
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, ci, err := rd.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(rd.LinkType(), ci, data)
		if err != nil {
			continue
		}
		a, b := pkt.IP.Src, pkt.IP.Dst
		if b.Compare(a) < 0 {
			a, b = b, a
		}
		h := uint64(14695981039346656037)
		for _, by := range a.As16() {
			h = (h ^ uint64(by)) * 1099511628211
		}
		for _, by := range b.As16() {
			h = (h ^ uint64(by)) * 1099511628211
		}
		analyzers[h%3].FeedPacket(pkt)
	}
	p0, p1, p2 := analyzers[0].Partial(), analyzers[1].Partial(), analyzers[2].Partial()
	mergeA := core.MergePartials([]core.Partial{p0, p1, p2})
	mergeB := core.MergePartials([]core.Partial{core.MergePartials([]core.Partial{p2, p0}), p1})
	profA := NewProfile("order-a", "sharded", mergeA, time.Time{})
	profB := NewProfile("order-b", "sharded", mergeB, time.Time{})
	rep := Compare(profA, profB, DefaultThresholds())
	if len(rep.Findings) != 0 {
		t.Fatalf("merge order changed drift metrics: %v", rep.Findings)
	}
	// The sharded merge must also not drift against the era's
	// single-analyzer profile.
	rep = Compare(y1.profile, profA, DefaultThresholds())
	if len(rep.Findings) != 0 {
		t.Fatalf("sharded analysis drifted from offline analysis: %v", rep.Findings)
	}
}

// TestCompareDirectionality: A->B churn mirrors B->A.
func TestCompareDirectionality(t *testing.T) {
	y1 := getEra(t, topology.Y1)
	y2 := getEra(t, topology.Y2)
	fwd := Compare(y1.profile, y2.profile, DefaultThresholds())
	rev := Compare(y2.profile, y1.profile, DefaultThresholds())
	if len(findingsOf(fwd, FindEndpointAdded)) != len(findingsOf(rev, FindEndpointRemoved)) {
		t.Errorf("added(A->B)=%d != removed(B->A)=%d",
			len(findingsOf(fwd, FindEndpointAdded)), len(findingsOf(rev, FindEndpointRemoved)))
	}
	if len(findingsOf(fwd, FindConnectionAdded)) != len(findingsOf(rev, FindConnectionRemoved)) {
		t.Errorf("connection churn not symmetric")
	}
}
