package scadasim

import (
	"testing"
	"time"

	"uncharted/internal/modbus"
	"uncharted/internal/topology"
)

// TestModbusTrafficGenerated drives the Modbus outstation and decodes
// every poll off the wire: requests from the master side, responses
// (and the planted exception) from the outstation.
func TestModbusTrafficGenerated(t *testing.T) {
	cfg := smallConfig(topology.Y1)
	cfg.EnableModbus = true
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var reqs, resps, exceptions int
	for _, r := range tr.Records {
		if r.Dst.Port() != PortModbus && r.Src.Port() != PortModbus {
			continue
		}
		if len(r.Payload) == 0 {
			continue
		}
		a, err := modbus.DecodeADU(r.Payload)
		if err != nil {
			t.Fatalf("undecodable modbus segment: %v", err)
		}
		switch {
		case a.Exception():
			exceptions++
		case r.Dst.Port() == PortModbus:
			reqs++
		default:
			resps++
		}
	}
	if reqs == 0 || resps == 0 {
		t.Fatalf("modbus traffic missing: %d requests, %d responses", reqs, resps)
	}
	if exceptions == 0 {
		t.Error("no exception responses in trace")
	}
	// Healthy link: every request is answered.
	if resps+exceptions != reqs {
		t.Errorf("%d requests but %d replies", reqs, resps+exceptions)
	}

	// Off by default: the baseline trace carries no port-502 traffic.
	base := runSmall(t, topology.Y1)
	for _, r := range base.Records {
		if r.Src.Port() == PortModbus || r.Dst.Port() == PortModbus {
			t.Fatal("modbus traffic present without EnableModbus")
		}
	}
}

// countModbus tallies request and reply payload segments on port 502.
func countModbus(tr *Trace) (reqs, repls int) {
	for _, r := range tr.Records {
		if len(r.Payload) == 0 {
			continue
		}
		switch {
		case r.Dst.Port() == PortModbus:
			reqs++
		case r.Src.Port() == PortModbus:
			repls++
		}
	}
	return
}

// TestFaultsShapeTraffic checks each fault knob against the healthy
// baseline: timeouts swallow replies while the polls stand, short
// reads split frames into extra segments, and delay pushes replies
// later without changing their count.
func TestFaultsShapeTraffic(t *testing.T) {
	run := func(f Faults) *Trace {
		cfg := smallConfig(topology.Y1)
		cfg.EnableModbus = true
		cfg.DisableBackground = true
		// Retransmit duplicates would blur the segment-count
		// comparisons below.
		cfg.RetransmitProb = 0
		cfg.Faults = f
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	healthy := run(Faults{})
	hReqs, hRepls := countModbus(healthy)

	lossy := run(Faults{TimeoutProb: 0.3})
	lReqs, lRepls := countModbus(lossy)
	if lReqs != hReqs {
		t.Errorf("timeouts changed request count: %d vs %d", lReqs, hReqs)
	}
	if lRepls >= hRepls {
		t.Errorf("timeouts dropped no replies: %d vs %d", lRepls, hRepls)
	}

	torn := run(Faults{ShortReadProb: 0.5})
	tReqs, tRepls := countModbus(torn)
	if tReqs+tRepls <= hReqs+hRepls {
		t.Errorf("short reads produced no extra segments: %d vs %d",
			tReqs+tRepls, hReqs+hRepls)
	}
	// Torn segments must reassemble into the same byte stream.
	var healthyBytes, tornBytes int
	for _, r := range healthy.Records {
		if r.Src.Port() == PortModbus {
			healthyBytes += len(r.Payload)
		}
	}
	for _, r := range torn.Records {
		if r.Src.Port() == PortModbus {
			tornBytes += len(r.Payload)
		}
	}
	if healthyBytes != tornBytes {
		t.Errorf("short reads changed reply byte count: %d vs %d", tornBytes, healthyBytes)
	}

	slow := run(Faults{Delay: 150 * time.Millisecond})
	sReqs, sRepls := countModbus(slow)
	if sReqs != hReqs || sRepls != hRepls {
		t.Errorf("pure delay changed segment counts: %d/%d vs %d/%d",
			sReqs, sRepls, hReqs, hRepls)
	}

	// Faults degrade the IEC 104 outstations too, not just Modbus.
	iecHealthy, iecLossy := 0, 0
	for _, r := range healthy.Records {
		if r.Src.Port() == 2404 && len(r.Payload) > 0 {
			iecHealthy++
		}
	}
	for _, r := range lossy.Records {
		if r.Src.Port() == 2404 && len(r.Payload) > 0 {
			iecLossy++
		}
	}
	if iecLossy >= iecHealthy {
		t.Errorf("timeouts left IEC 104 replies untouched: %d vs %d", iecLossy, iecHealthy)
	}
}
