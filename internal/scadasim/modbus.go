package scadasim

import (
	"net/netip"
	"time"

	"uncharted/internal/modbus"
	"uncharted/internal/pcap"
)

// PortModbus is the registered Modbus/TCP server port.
const PortModbus = 502

// generateModbus emits a Modbus/TCP polling association: control
// server C2 cycles holding-register and coil reads against a
// distribution-feeder outstation, with occasional setpoint writes and
// an intermittent illegal-address exception. Enabled by
// Config.EnableModbus (off by default so the baseline captures stay
// byte-identical).
func (s *Simulator) generateModbus() {
	outAddr := netip.AddrFrom4([4]byte{10, 0, 5, 9})
	c := &conn{
		sim:       s,
		rng:       newBackgroundRand(s.cfg.Seed, PortModbus),
		client:    netip.AddrPortFrom(s.net.ServerAddr("C2"), s.port()),
		server:    netip.AddrPortFrom(outAddr, PortModbus),
		clientSeq: 7000,
		serverSeq: 8000,
		open:      true,
	}
	const unit = 1
	txid := uint16(1)
	poll := func(t time.Time, req, resp []byte) {
		c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, req)
		c.emit(t.Add(20*time.Millisecond+c.jitter(15*time.Millisecond)), false,
			pcap.FlagPSH|pcap.FlagACK, resp)
		txid++
	}

	i := 0
	for t := s.cfg.Start.Add(1500 * time.Millisecond); t.Before(s.end()); t = t.Add(2 * time.Second) {
		// Register scan: six feeder measurements that wander slowly.
		vals := make([]uint16, 6)
		for j := range vals {
			base := 3000 + 40*j
			vals[j] = uint16(base + int(30*mathSin(float64(i)/25+float64(j))))
		}
		poll(t, modbus.ReadRequest(txid, unit, modbus.FuncReadHolding, 100, 6),
			modbus.ReadRegistersResponse(txid, unit, modbus.FuncReadHolding, vals))

		switch {
		case i%5 == 2:
			// Breaker/switch status coils.
			bits := make([]bool, 8)
			for j := range bits {
				bits[j] = (i/5+j)%3 != 0
			}
			tc := t.Add(300 * time.Millisecond)
			poll(tc, modbus.ReadRequest(txid, unit, modbus.FuncReadCoils, 10, 8),
				modbus.ReadBitsResponse(txid, unit, modbus.FuncReadCoils, bits))
		case i%40 == 17:
			// Operator setpoint write; the response echoes the request.
			req := modbus.WriteSingle(txid, unit, modbus.FuncWriteSingleReg, 200, uint16(500+i))
			poll(t.Add(300*time.Millisecond), req, req)
		case i%64 == 33:
			// Scan of an unmapped block: illegal data address.
			tc := t.Add(300 * time.Millisecond)
			poll(tc, modbus.ReadRequest(txid, unit, modbus.FuncReadInput, 9000, 4),
				modbus.Exception(txid, unit, modbus.FuncReadInput, 2))
		}
		i++
	}
	s.records = append(s.records, c.recs...)
}
