package scadasim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/pcap"
	"uncharted/internal/topology"
)

// smallConfig keeps unit-test traces quick.
func smallConfig(year topology.Year) Config {
	cfg := DefaultConfig(year, 7)
	cfg.Duration = 4 * time.Minute
	cfg.CyclePeriod = 90 * time.Second
	return cfg
}

func runSmall(t *testing.T, year topology.Year) *Trace {
	t.Helper()
	sim, err := New(smallConfig(year))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) == 0 {
		t.Fatal("empty trace")
	}
	return tr
}

func TestTraceOrderedAndDeterministic(t *testing.T) {
	tr1 := runSmall(t, topology.Y1)
	for i := 1; i < len(tr1.Records); i++ {
		if tr1.Records[i].Time.Before(tr1.Records[i-1].Time) {
			t.Fatalf("records out of order at %d", i)
		}
	}
	tr2 := runSmall(t, topology.Y1)
	if len(tr1.Records) != len(tr2.Records) {
		t.Fatalf("non-deterministic: %d vs %d records", len(tr1.Records), len(tr2.Records))
	}
	for i := range tr1.Records {
		a, b := tr1.Records[i], tr2.Records[i]
		if !a.Time.Equal(b.Time) || a.Src != b.Src || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestTraceContainsExpectedBehaviours(t *testing.T) {
	tr := runSmall(t, topology.Y1)
	var sawReject, sawSilent, sawSwitchover, sawTesting, sawInterro bool
	for _, ct := range tr.Truth.Connections {
		if ct.Rejected {
			sawReject = true
		}
		if ct.Silent {
			sawSilent = true
		}
		if ct.Switchover {
			sawSwitchover = true
		}
		if ct.Testing {
			sawTesting = true
		}
		if ct.Interro {
			sawInterro = true
		}
	}
	if !sawReject || !sawSilent || !sawSwitchover || !sawTesting || !sawInterro {
		t.Fatalf("missing behaviours: reject=%v silent=%v switch=%v testing=%v interro=%v",
			sawReject, sawSilent, sawSwitchover, sawTesting, sawInterro)
	}
	if tr.Truth.AGCCommandCount == 0 {
		t.Error("no AGC commands issued")
	}
}

func TestRejectedConnectionShape(t *testing.T) {
	tr := runSmall(t, topology.Y1)
	// Find an O7 reject attempt: SYN / SYN-ACK / ACK / U16 / RST.
	net := topology.Build()
	o7, _ := net.Outstation("O7")
	var flags []uint8
	var rstSeen bool
	for _, r := range tr.Records {
		if r.Dst.Addr() == o7.Addr || r.Src.Addr() == o7.Addr {
			flags = append(flags, r.Flags)
			if r.Flags&pcap.FlagRST != 0 {
				rstSeen = true
			}
		}
	}
	if !rstSeen {
		t.Fatal("O7 never reset a backup connection")
	}
	if len(flags) < 10 {
		t.Fatalf("O7 exchanged only %d packets", len(flags))
	}
}

func TestLegacyStationsEmitLegacyFrames(t *testing.T) {
	tr := runSmall(t, topology.Y1)
	net := topology.Build()
	o28, _ := net.Outstation("O28") // 1-octet COT
	var checked bool
	for _, r := range tr.Records {
		if r.Src.Addr() != o28.Addr || len(r.Payload) == 0 {
			continue
		}
		if r.Payload[0] != 0x68 {
			continue
		}
		// Strict parsing of an I frame from O28 must fail or look
		// implausible; the legacy profile must succeed.
		apdus, _, err := iec104.ParseAPDUs(r.Payload, iec104.LegacyCOT)
		if err != nil {
			t.Fatalf("legacy parse of O28 frame failed: %v", err)
		}
		for _, a := range apdus {
			if a.Format == iec104.FormatI {
				checked = true
			}
		}
		if checked {
			break
		}
	}
	if !checked {
		t.Fatal("no I-format frames from O28 found")
	}
}

func TestO30KeepAliveInterval(t *testing.T) {
	tr := runSmall(t, topology.Y1)
	net := topology.Build()
	o30, _ := net.Outstation("O30")
	c2 := net.ServerAddr("C2")
	var times []time.Time
	for _, r := range tr.Records {
		if r.Src.Addr() == c2 && r.Dst.Addr() == o30.Addr && r.Flags&pcap.FlagSYN != 0 {
			times = append(times, r.Time)
		}
	}
	// 4-minute trace with 430 s attempts: at most one attempt.
	if len(times) > 1 {
		t.Fatalf("O30 saw %d backup attempts in 4 minutes; misconfigured 430s timer not honoured", len(times))
	}
}

func TestPCAPRoundTrip(t *testing.T) {
	tr := runSmall(t, topology.Y2)
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var iec int
	for {
		data, ci, err := r.ReadPacket()
		if err != nil {
			break
		}
		pkt, err := pcap.DecodePacket(r.LinkType(), ci, data)
		if err != nil {
			t.Fatalf("packet %d: %v", n, err)
		}
		if err := pcap.VerifyTCPChecksum(pkt.IP.Payload, pkt.IP.Src, pkt.IP.Dst); err != nil {
			t.Fatalf("packet %d checksum: %v", n, err)
		}
		if len(pkt.TCP.Payload) > 0 && pkt.TCP.Payload[0] == 0x68 {
			iec++
		}
		n++
	}
	if n != len(tr.Records) {
		t.Fatalf("wrote %d records, read %d", len(tr.Records), n)
	}
	if iec == 0 {
		t.Fatal("no IEC 104 payloads in capture")
	}
}

func TestY2UsesSwitchedPrimaries(t *testing.T) {
	// Type 4 stations talk to Servers[1] in Y2.
	tr := runSmall(t, topology.Y2)
	net := topology.Build()
	o3, _ := net.Outstation("O3") // Type 4, pair C3/C4
	want := net.ServerAddr(o3.Servers[1])
	var iFrom, iTo int
	for _, r := range tr.Records {
		if r.Src.Addr() == o3.Addr && len(r.Payload) > 0 {
			if r.Dst.Addr() == want {
				iTo++
			} else {
				iFrom++
			}
		}
	}
	if iTo == 0 {
		t.Fatal("O3 did not report to its Y2 primary")
	}
	if iFrom > iTo {
		t.Fatalf("O3 sent more to the Y1 primary (%d) than the Y2 one (%d)", iFrom, iTo)
	}
}

func TestTestingStationPacketBudget(t *testing.T) {
	tr := runSmall(t, topology.Y1)
	net := topology.Build()
	o22, _ := net.Outstation("O22")
	cnt := 0
	for _, r := range tr.Records {
		if r.Src.Addr() == o22.Addr || r.Dst.Addr() == o22.Addr {
			cnt++
		}
	}
	if cnt == 0 || cnt > 6 {
		t.Fatalf("testing station exchanged %d packets, want a handful", cnt)
	}
}

func TestAbsentOutstationsSilent(t *testing.T) {
	tr := runSmall(t, topology.Y2)
	net := topology.Build()
	for _, id := range []topology.OutstationID{"O2", "O15", "O20", "O22", "O28", "O33", "O38"} {
		o, _ := net.Outstation(id)
		for _, r := range tr.Records {
			if r.Src.Addr() == o.Addr || r.Dst.Addr() == o.Addr {
				t.Fatalf("removed outstation %s appears in Y2 trace", id)
			}
		}
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{Year: topology.Y1}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestServerPortsAreClientSide(t *testing.T) {
	tr := runSmall(t, topology.Y1)
	// Every record touches a known industrial port: IEC 104 (2404) on
	// the outstation side, or the background protocols (C37.118 4712,
	// ICCP 102).
	known := map[uint16]bool{2404: true, 4712: true, 102: true}
	iec := 0
	for _, r := range tr.Records[:500] {
		if !known[r.Src.Port()] && !known[r.Dst.Port()] {
			t.Fatalf("record without a known port: %v -> %v", r.Src, r.Dst)
		}
		if r.Src.Port() == 2404 || r.Dst.Port() == 2404 {
			iec++
		}
	}
	if iec == 0 {
		t.Fatal("no IEC 104 records")
	}
	_ = netip.AddrPort{}
}

func TestBackgroundTrafficPresentAndSkippable(t *testing.T) {
	tr := runSmall(t, topology.Y1)
	var pmu, iccp int
	for _, r := range tr.Records {
		switch {
		case r.Src.Port() == 4712 || r.Dst.Port() == 4712:
			pmu++
		case r.Src.Port() == 102 || r.Dst.Port() == 102:
			iccp++
		}
	}
	if pmu == 0 {
		t.Error("no C37.118 synchrophasor traffic in trace")
	}
	if iccp == 0 {
		t.Error("no ICCP traffic in trace")
	}
	// Disabling background removes it.
	cfg := smallConfig(topology.Y1)
	cfg.DisableBackground = true
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr2.Records {
		if r.Src.Port() == 4712 || r.Dst.Port() == 102 || r.Dst.Port() == 4712 || r.Src.Port() == 102 {
			t.Fatal("background traffic present despite DisableBackground")
		}
	}
}
