package scadasim

import (
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
)

// Metric names exported by an instrumented Simulator.
const (
	MetricConnections  = "uncharted_scadasim_connections_total"
	MetricRecords      = "uncharted_scadasim_records_total"
	MetricRetransDups  = "uncharted_scadasim_retransmit_dups_total"
	MetricResets       = "uncharted_scadasim_rst_segments_total"
	MetricAPDUs        = "uncharted_scadasim_apdus_total"
	MetricTimerRedials = "uncharted_scadasim_t0_redials_total"
	MetricTestFRPairs  = "uncharted_scadasim_testfr_acts_total"
	MetricStartDTPairs = "uncharted_scadasim_startdt_acts_total"
)

// simMetrics holds the pre-resolved handles one Simulator updates.
type simMetrics struct {
	reg *obs.Registry

	records     *obs.Counter
	retransDups *obs.Counter
	resets      *obs.Counter
	apduI       *obs.Counter
	apduS       *obs.Counter
	apduU       *obs.Counter
	t0Redials   *obs.Counter
	testFRActs  *obs.Counter
	startDTActs *obs.Counter
}

func newSimMetrics(reg *obs.Registry) *simMetrics {
	reg.SetHelp(MetricConnections, "Synthesized TCP connections, by ground-truth role and pathology.")
	reg.SetHelp(MetricRecords, "TCP segments written to the trace.")
	reg.SetHelp(MetricRetransDups, "Segments duplicated to model TCP retransmission.")
	reg.SetHelp(MetricResets, "RST segments emitted (the rejected-backup pathology).")
	reg.SetHelp(MetricAPDUs, "IEC 104 APDUs synthesized, by APCI format.")
	reg.SetHelp(MetricTimerRedials, "Backup re-dial attempts driven by the T0 connection timeout.")
	reg.SetHelp(MetricTestFRPairs, "TESTFR act frames emitted (keep-alives).")
	reg.SetHelp(MetricStartDTPairs, "STARTDT act frames emitted (transfer activations).")
	return &simMetrics{
		reg:         reg,
		records:     reg.Counter(MetricRecords),
		retransDups: reg.Counter(MetricRetransDups),
		resets:      reg.Counter(MetricResets),
		apduI:       reg.Counter(MetricAPDUs, "format", "i"),
		apduS:       reg.Counter(MetricAPDUs, "format", "s"),
		apduU:       reg.Counter(MetricAPDUs, "format", "u"),
		t0Redials:   reg.Counter(MetricTimerRedials),
		testFRActs:  reg.Counter(MetricTestFRPairs),
		startDTActs: reg.Counter(MetricStartDTPairs),
	}
}

// noteRecord books one emitted segment. Nil-safe.
func (m *simMetrics) noteRecord(rst bool) {
	if m == nil {
		return
	}
	m.records.Inc()
	if rst {
		m.resets.Inc()
	}
}

// noteRetransDup books one duplicated segment. Nil-safe.
func (m *simMetrics) noteRetransDup() {
	if m != nil {
		m.retransDups.Inc()
	}
}

// noteAPDU books one marshalled APDU. Nil-safe.
func (m *simMetrics) noteAPDU(a *iec104.APDU) {
	if m == nil {
		return
	}
	switch a.Format {
	case iec104.FormatI:
		m.apduI.Inc()
	case iec104.FormatS:
		m.apduS.Inc()
	case iec104.FormatU:
		m.apduU.Inc()
		switch a.U {
		case iec104.UTestFRAct:
			m.testFRActs.Inc()
		case iec104.UStartDTAct:
			m.startDTActs.Inc()
		}
	}
}

// noteT0Redial books one T0-driven reconnect attempt. Nil-safe.
func (m *simMetrics) noteT0Redial() {
	if m != nil {
		m.t0Redials.Inc()
	}
}

// noteConn books one finished connection under its ground-truth labels.
// Connections are few, so the labeled series resolves lazily. Nil-safe.
func (m *simMetrics) noteConn(truth ConnTruth) {
	if m == nil {
		return
	}
	m.reg.Counter(MetricConnections,
		"role", roleLabel(truth.Role), "pathology", truthPathology(truth)).Inc()
}

// roleLabel renders a ConnRole for metric labels.
func roleLabel(r ConnRole) string {
	if r == RolePrimary {
		return "primary"
	}
	return "secondary"
}

// truthPathology flattens a ConnTruth's behaviour flags into one label.
func truthPathology(t ConnTruth) string {
	switch {
	case t.Rejected:
		return "rejected"
	case t.Silent:
		return "silent"
	case t.Testing:
		return "testing"
	case t.Switchover:
		return "switchover"
	}
	return "none"
}

// journalConn emits a conn_state event describing one flushed
// connection. Nil-safe via Journal.Log.
func (s *Simulator) journalConn(c *conn, truth ConnTruth) {
	if s.journal == nil {
		return
	}
	ts := time.Time{}
	if len(c.recs) > 0 {
		ts = c.recs[len(c.recs)-1].Time
	}
	s.journal.Log(ts, obs.EventConnState, c.client.String()+">"+c.server.String(), map[string]any{
		"state":      "flushed",
		"server":     truth.Server,
		"outstation": truth.Outstation,
		"role":       roleLabel(truth.Role),
		"pathology":  truthPathology(truth),
		"records":    len(c.recs),
	})
}
