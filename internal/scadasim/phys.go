package scadasim

import (
	"time"

	"uncharted/internal/powersim"
	"uncharted/internal/topology"
)

// PhysSample is one sampled operating point of a generator.
type PhysSample struct {
	T       time.Time
	P       float64 // active power, MW
	Q       float64 // reactive power, MVAr
	UGrid   float64 // transformer output voltage, kV
	UTerm   float64 // generator terminal voltage, kV
	Current float64 // kA
	Freq    float64 // system frequency, Hz
	Breaker powersim.BreakerStatus
}

// PhysSeries is the sampled history of one generator.
type PhysSeries struct {
	Generator string
	Samples   []PhysSample
}

// At returns the sample in force at time t (the latest sample not
// after t). ok is false before the first sample.
func (ps *PhysSeries) At(t time.Time) (PhysSample, bool) {
	if len(ps.Samples) == 0 || t.Before(ps.Samples[0].T) {
		return PhysSample{}, false
	}
	lo, hi := 0, len(ps.Samples)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ps.Samples[mid].T.After(t) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return ps.Samples[lo], true
}

// physWorld is the precomputed physical history the packet generators
// read from: per-generator series plus the AGC command log.
type physWorld struct {
	series   map[string]*PhysSeries // generator name -> series
	commands []powersim.SetpointCommand
	genOf    map[topology.OutstationID]string
}

// buildPhysWorld runs the grid for the whole capture window, sampling
// every sample interval, with the year's scripted events.
func buildPhysWorld(cfg Config, net *topology.Network, truth *GroundTruth) *physWorld {
	grid := powersim.NewGrid(cfg.Start, cfg.Seed)
	agc := powersim.NewAGC(grid)

	w := &physWorld{
		series: make(map[string]*PhysSeries),
		genOf:  make(map[topology.OutstationID]string),
	}
	truth.Generators = make(map[string]string)

	// One generator per generator-bearing, I-transmitting outstation.
	var syncCandidate string
	for _, o := range net.OutstationsIn(cfg.Year) {
		if !o.HasGenerator || !o.SendsIFormat() {
			continue
		}
		name := "gen-" + string(o.ID)
		capacity := 80 + float64(topology.Num(o.ID)%7)*40
		initial := capacity * 0.55
		online := true
		if o.ID == cfg.genSyncOutstation() {
			online = false
			initial = 0
			syncCandidate = name
		}
		gen := grid.AddGenerator(name, capacity, initial, online)
		if !o.ReceivesAGC {
			// Non-AGC units hold their own dispatch; exclude them
			// from the control loop by zeroing participation.
			gen.Setpoint = initial
			excludeFromAGC(gen)
		}
		w.genOf[o.ID] = name
		truth.Generators[string(o.ID)] = name
		w.series[name] = &PhysSeries{Generator: name}
	}

	// Scripted events: the unmet-load incident (Figs. 18/19) and a
	// generator synchronisation (Figs. 20/21).
	unmetAt := cfg.Start.Add(cfg.Duration * 2 / 5)
	grid.ScheduleLoadStep(unmetAt, -0.12*grid.BaseLoad)
	grid.ScheduleLoadStep(unmetAt.Add(cfg.Duration/6), 0.12*grid.BaseLoad)
	truth.UnmetLoadAt = unmetAt

	if syncCandidate != "" {
		syncAt := cfg.Start.Add(cfg.Duration / 5)
		target := 60.0
		_ = grid.ScheduleGeneratorSync(syncAt, syncCandidate, 2*time.Minute, target)
		truth.GenSyncAt = syncAt
		truth.GenSyncName = syncCandidate
	}

	for t := cfg.Start; !t.After(cfg.Start.Add(cfg.Duration)); t = t.Add(cfg.SampleInterval) {
		grid.AdvanceTo(t)
		w.commands = append(w.commands, agc.Run(t)...)
		for _, gen := range grid.Generators {
			s := w.series[gen.Name]
			s.Samples = append(s.Samples, PhysSample{
				T:       t,
				P:       gen.Output,
				Q:       gen.ReactivePower,
				UGrid:   gen.GridVoltage,
				UTerm:   gen.TerminalVoltage,
				Current: gen.Current,
				Freq:    grid.Frequency,
				Breaker: gen.Breaker,
			})
		}
	}
	truth.AGCCommandCount = len(w.commands)
	return w
}

// excludeFromAGC zeroes a unit's participation via the exported
// surface: powersim keys participation off AddGenerator, so emulate
// exclusion by marking it non-participating.
func excludeFromAGC(g *powersim.Generator) {
	// participation is unexported; Participating() requires Online and
	// participation > 0. Setting capacity-scaled dispatch off is done
	// by the dedicated helper in powersim.
	g.SetParticipation(0)
}

// commandsFor returns the AGC commands addressed to one generator.
func (w *physWorld) commandsFor(gen string) []powersim.SetpointCommand {
	var out []powersim.SetpointCommand
	for _, c := range w.commands {
		if c.Generator == gen {
			out = append(out, c)
		}
	}
	return out
}
