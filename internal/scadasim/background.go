package scadasim

import (
	"math"
	"net/netip"
	"time"

	"uncharted/internal/c37118"
	"uncharted/internal/pcap"
)

// Well-known ports of the other industrial protocols in the tap.
const (
	// PortC37118 is the IEEE C37.118 synchrophasor TCP port.
	PortC37118 = 4712
	// PortICCP is ISO transport (TPKT) — ICCP/TASE.2 runs over it.
	PortICCP = 102
)

// generateBackground emits the non-IEC-104 industrial traffic the
// paper's tap also carried (§5): phasor measurement units streaming
// C37.118 to the control centre and an ICCP association between the
// system operator and a neighbouring control centre. The measurement
// pipeline must skip all of it.
func (s *Simulator) generateBackground() {
	s.generatePMUs()
	s.generateICCP()
}

// generatePMUs streams synchrophasor data from two PMU gateways to
// server C3.
func (s *Simulator) generatePMUs() {
	cfg := &c37118.Config{
		IDCode: 900,
		Time:   s.cfg.Start,
		PMUs: []c37118.PMUConfig{
			{StationName: "PMU-NORTH", IDCode: 901, PhasorNames: []string{"VA", "VB", "IA"},
				NominalFreq: 60, ConversionFactor: 0.01},
			{StationName: "PMU-SOUTH", IDCode: 902, PhasorNames: []string{"VA", "IA"},
				NominalFreq: 60, ConversionFactor: 0.01},
		},
		// 1 fps keeps the background stream from drowning the IEC 104
		// signal; the CFG-2 declares the same rate so the healthy
		// capture is rate-compliant (fault knobs create the violations).
		DataRate: 1,
	}
	pmuAddr := netip.AddrFrom4([4]byte{10, 0, 5, 1})
	server := netip.AddrPortFrom(s.net.ServerAddr("C3"), PortC37118)
	c := &conn{
		sim:       s,
		rng:       newBackgroundRand(s.cfg.Seed, 900),
		client:    netip.AddrPortFrom(pmuAddr, s.port()),
		server:    server,
		clientSeq: 1000,
		serverSeq: 2000,
		open:      true,
	}
	// Configuration frame first (as after a CFG-2 request), then a
	// steady data stream at the declared rate.
	cfgFrame, err := cfg.Marshal()
	if err != nil {
		panic("scadasim: " + err.Error())
	}
	c.emit(s.cfg.Start.Add(200*time.Millisecond), true, pcap.FlagPSH|pcap.FlagACK, cfgFrame)

	interval := time.Second
	i := 0
	for t := s.cfg.Start.Add(time.Second); t.Before(s.end()); t = t.Add(interval) {
		phase := float64(i) / 40
		d := &c37118.Data{
			IDCode: 900,
			Time:   t,
			PMUs: []c37118.PMUData{
				{
					Phasors: []c37118.Phasor{
						{Name: "VA", Magnitude: 132.5 + 0.3*math.Sin(phase), AngleRad: 0.1},
						{Name: "VB", Magnitude: 132.2 + 0.3*math.Sin(phase+2), AngleRad: -2.0},
						{Name: "IA", Magnitude: 42 + 2*math.Sin(phase/3), AngleRad: 0.3},
					},
					Freq: 60 + 0.01*math.Sin(phase/5),
				},
				{
					Phasors: []c37118.Phasor{
						{Name: "VA", Magnitude: 131.8 + 0.25*math.Sin(phase+1), AngleRad: 1.1},
						{Name: "IA", Magnitude: 39 + 2*math.Sin(phase/4), AngleRad: -0.2},
					},
					Freq: 60 + 0.01*math.Sin(phase/5+0.2),
				},
			},
		}
		frame, err := d.Marshal(cfg)
		if err != nil {
			panic("scadasim: " + err.Error())
		}
		c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, frame)
		i++
	}
	s.records = append(s.records, c.recs...)
}

// generateICCP emits an opaque TASE.2/ICCP association (TPKT framing
// over port 102) between server C1 and a neighbouring control centre —
// present in the tap, out of scope for the analysis.
func (s *Simulator) generateICCP() {
	peer := netip.AddrFrom4([4]byte{10, 0, 6, 2})
	c := &conn{
		sim:       s,
		rng:       newBackgroundRand(s.cfg.Seed, 102),
		client:    netip.AddrPortFrom(s.net.ServerAddr("C1"), s.port()),
		server:    netip.AddrPortFrom(peer, PortICCP),
		clientSeq: 5000,
		serverSeq: 6000,
		open:      true,
	}
	for t := s.cfg.Start.Add(3 * time.Second); t.Before(s.end()); t = t.Add(8 * time.Second) {
		payload := tpkt(c, 40+c.rng.Intn(80))
		c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, payload)
		reply := tpkt(c, 30+c.rng.Intn(60))
		c.emit(t.Add(60*time.Millisecond), false, pcap.FlagPSH|pcap.FlagACK, reply)
	}
	s.records = append(s.records, c.recs...)
}

// tpkt wraps random bytes in an RFC 1006 TPKT header (version 3).
func tpkt(c *conn, bodyLen int) []byte {
	out := make([]byte, 4+bodyLen)
	out[0] = 0x03
	out[1] = 0x00
	out[2] = byte((4 + bodyLen) >> 8)
	out[3] = byte(4 + bodyLen)
	for i := 4; i < len(out); i++ {
		out[i] = byte(c.rng.Intn(256))
	}
	return out
}
