// Package scadasim synthesizes bulk-power SCADA captures: it drives
// the topology of the paper's network (27 substations, 58 outstations,
// 4 control servers) over a simulated power grid and emits the packets
// the authors' network tap would have seen, in libpcap format.
//
// The paper's raw captures are proprietary; this simulator is the
// documented substitution (DESIGN.md). Every behaviour the paper
// reports is generated: IEC 104 primary/secondary connections with
// T0-T3 timer behaviour, interrogations on activation and switchover,
// S-format acknowledgement cadence, reset and silently-dropped backup
// connections, legacy IEC 101 field encodings, the misconfigured
// 430-second keep-alive, spontaneous-only reporting with stale data,
// AGC setpoint commands and the physical event signatures of §6.4.
package scadasim

import (
	"io"
	"net/netip"
	"sort"
	"time"

	"uncharted/internal/pcap"
)

// Record is one synthesized packet before serialization.
type Record struct {
	Time     time.Time
	Src, Dst netip.AddrPort
	Flags    uint8
	Seq, Ack uint32
	Payload  []byte
}

// Trace is a finished capture plus ground truth for validation.
type Trace struct {
	Records []Record
	Truth   GroundTruth
}

// ConnRole distinguishes the two connections of a redundant pair.
type ConnRole int

// Connection roles.
const (
	RolePrimary ConnRole = iota
	RoleSecondary
)

// ConnTruth records what the simulator did on one server-outstation
// relationship, for test assertions and EXPERIMENTS.md bookkeeping.
type ConnTruth struct {
	Server     string
	Outstation string
	Role       ConnRole
	Rejected   bool // backup reset with RST after U16
	Silent     bool // backup SYNs silently dropped
	Switchover bool // secondary promoted to primary mid-capture
	Interro    bool // an I100 interrogation was sent
	Testing    bool // commissioning-only exchange
}

// GroundTruth aggregates simulator-side facts about a trace.
type GroundTruth struct {
	Year        int
	Connections []ConnTruth
	// Generators maps outstation ID -> generator name in the grid.
	Generators map[string]string
	// AGCCommandCount is the number of setpoint commands issued.
	AGCCommandCount int
	// UnmetLoadAt / GenSyncAt are the scripted physical events (zero
	// when not scheduled).
	UnmetLoadAt time.Time
	GenSyncAt   time.Time
	GenSyncName string
	// Attack is set when InjectAttack added malicious traffic.
	Attack *AttackTruth
}

// WritePCAP serializes the trace as an Ethernet libpcap file.
func (tr *Trace) WritePCAP(w io.Writer) error {
	pw := pcap.NewWriter(w, pcap.LinkTypeEthernet)
	for i := range tr.Records {
		r := &tr.Records[i]
		frame, err := pcap.BuildTCPPacket(r.Src, r.Dst, pcap.TCP{
			Seq: r.Seq, Ack: r.Ack, Flags: r.Flags, Payload: r.Payload,
		})
		if err != nil {
			return err
		}
		if err := pw.WritePacket(pcap.CaptureInfo{Timestamp: r.Time}, frame); err != nil {
			return err
		}
	}
	return nil
}

// sortRecords orders the merged per-connection streams by time,
// breaking ties by endpoint so output is deterministic.
func sortRecords(rs []Record) {
	sort.SliceStable(rs, func(i, j int) bool {
		if !rs[i].Time.Equal(rs[j].Time) {
			return rs[i].Time.Before(rs[j].Time)
		}
		if c := rs[i].Src.Addr().Compare(rs[j].Src.Addr()); c != 0 {
			return c < 0
		}
		return rs[i].Src.Port() < rs[j].Src.Port()
	})
}
