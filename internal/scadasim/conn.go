package scadasim

import (
	"math"
	"math/rand"
	"net/netip"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/pcap"
	"uncharted/internal/topology"
)

// conn emits the packet stream of one TCP connection between a control
// server (the TCP client: controlling stations dial outstation port
// 2404) and an outstation.
type conn struct {
	sim     *Simulator
	rng     *rand.Rand
	client  netip.AddrPort // control server side
	server  netip.AddrPort // outstation side (port 2404)
	profile iec104.Profile

	clientSeq, serverSeq uint32 // TCP sequence state
	sendNS, recvNS       uint16 // IEC 104 N(S) per direction (client send / server send)
	unacked              int    // I-frames from outstation since last S ack

	open bool
	recs []Record
}

func newConn(sim *Simulator, serverAddr netip.Addr, clientPort uint16, o *topology.Outstation) *conn {
	seed := sim.cfg.Seed ^ int64(clientPort)<<16 ^ int64(topology.Num(o.ID))
	return &conn{
		sim:     sim,
		rng:     rand.New(rand.NewSource(seed)),
		client:  netip.AddrPortFrom(serverAddr, clientPort),
		server:  netip.AddrPortFrom(o.Addr, 2404),
		profile: o.Profile,
		// Persistent connections pre-date the capture: seed nonzero
		// sequence numbers.
		clientSeq: uint32(seed)*2654435761 + 17,
		serverSeq: uint32(seed)*40503 + 4099,
		open:      true,
	}
}

// jitter returns a small positive duration to de-synchronise streams.
func (c *conn) jitter(max time.Duration) time.Duration {
	return time.Duration(c.rng.Int63n(int64(max)))
}

// emit books one segment, first routing it through the configured
// fault model. Faults only touch payload-carrying segments: TCP
// control packets (SYN/FIN/RST) keep their exact timing so flow
// classification is unaffected. The zero-value Faults makes no rng
// draws at all, which keeps fault-free traces byte-identical.
func (c *conn) emit(t time.Time, fromClient bool, flags uint8, payload []byte) {
	f := c.sim.cfg.Faults
	if len(payload) > 0 && f.active() {
		// Timeouts model the device side going quiet: only responses
		// (server->client segments) vanish; the poll that provoked them
		// stays in the capture.
		if !fromClient && f.TimeoutProb > 0 && c.rng.Float64() < f.TimeoutProb {
			return
		}
		if f.Delay > 0 {
			t = t.Add(f.Delay)
		}
		if f.Jitter > 0 {
			t = t.Add(c.jitter(f.Jitter))
		}
		if f.ShortReadProb > 0 && len(payload) >= 2 && c.rng.Float64() < f.ShortReadProb {
			cut := 1 + c.rng.Intn(len(payload)-1)
			c.emitSegment(t, fromClient, flags, payload[:cut])
			c.emitSegment(t.Add(10*time.Millisecond), fromClient, flags, payload[cut:])
			return
		}
	}
	c.emitSegment(t, fromClient, flags, payload)
}

func (c *conn) emitSegment(t time.Time, fromClient bool, flags uint8, payload []byte) {
	r := Record{Time: t, Flags: flags, Payload: payload}
	if fromClient {
		r.Src, r.Dst = c.client, c.server
		r.Seq, r.Ack = c.clientSeq, c.serverSeq
		c.clientSeq += uint32(len(payload))
		if flags&(pcap.FlagSYN|pcap.FlagFIN) != 0 {
			c.clientSeq++
		}
	} else {
		r.Src, r.Dst = c.server, c.client
		r.Seq, r.Ack = c.serverSeq, c.clientSeq
		c.serverSeq += uint32(len(payload))
		if flags&(pcap.FlagSYN|pcap.FlagFIN) != 0 {
			c.serverSeq++
		}
	}
	c.recs = append(c.recs, r)
	c.sim.metrics.noteRecord(flags&pcap.FlagRST != 0)
	// TCP-level retransmission: duplicate the segment a beat later.
	// This is what §6.3.1 found behind "repeated U16/U32" tokens.
	if len(payload) > 0 && c.rng.Float64() < c.sim.cfg.RetransmitProb {
		dup := r
		dup.Time = t.Add(150*time.Millisecond + c.jitter(100*time.Millisecond))
		c.recs = append(c.recs, dup)
		c.sim.metrics.noteRetransDup()
	}
}

// handshake emits SYN / SYN-ACK / ACK.
func (c *conn) handshake(t time.Time) time.Time {
	c.emit(t, true, pcap.FlagSYN, nil)
	c.emit(t.Add(2*time.Millisecond), false, pcap.FlagSYN|pcap.FlagACK, nil)
	c.emit(t.Add(4*time.Millisecond), true, pcap.FlagACK, nil)
	return t.Add(5 * time.Millisecond)
}

// finClose emits an orderly FIN exchange initiated by the client.
func (c *conn) finClose(t time.Time) {
	c.emit(t, true, pcap.FlagFIN|pcap.FlagACK, nil)
	c.emit(t.Add(2*time.Millisecond), false, pcap.FlagFIN|pcap.FlagACK, nil)
	c.emit(t.Add(4*time.Millisecond), true, pcap.FlagACK, nil)
	c.open = false
}

// apdu marshals one APDU in this connection's dialect, panicking on
// programming errors (the simulator constructs only valid frames).
func (c *conn) apdu(a *iec104.APDU) []byte {
	b, err := a.Marshal(c.profile)
	if err != nil {
		panic("scadasim: " + err.Error())
	}
	c.sim.metrics.noteAPDU(a)
	return b
}

// sendI emits I-format APDUs (one TCP segment, possibly several APDUs)
// from the outstation and books the ack window.
func (c *conn) sendI(t time.Time, asdus []*iec104.ASDU) {
	if len(asdus) == 0 {
		return
	}
	var payload []byte
	for _, a := range asdus {
		payload = append(payload, c.apdu(iec104.NewI(c.recvNS, c.sendNS, a))...)
		c.recvNS++
		c.unacked++
	}
	c.emit(t, false, pcap.FlagPSH|pcap.FlagACK, payload)
	if c.unacked >= c.sim.cfg.AckWindow {
		c.emit(t.Add(8*time.Millisecond+c.jitter(10*time.Millisecond)), true,
			pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewS(c.recvNS)))
		c.unacked = 0
	}
}

// sendCommand emits a control-direction I frame (from the server) and
// the outstation's confirmation.
func (c *conn) sendCommand(t time.Time, act *iec104.ASDU, conCause iec104.Cause) time.Time {
	c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewI(c.sendNS, c.recvNS, act)))
	c.sendNS++
	con := *act
	con.COT.Cause = conCause
	c.emit(t.Add(30*time.Millisecond+c.jitter(40*time.Millisecond)), false,
		pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewI(c.recvNS, c.sendNS, &con)))
	c.recvNS++
	return t.Add(80 * time.Millisecond)
}

// keepAlive emits one TESTFR act/con pair.
func (c *conn) keepAlive(t time.Time) {
	c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewU(iec104.UTestFRAct)))
	c.emit(t.Add(15*time.Millisecond+c.jitter(20*time.Millisecond)), false,
		pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewU(iec104.UTestFRCon)))
}

// startDT emits STARTDT act/con.
func (c *conn) startDT(t time.Time) time.Time {
	c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewU(iec104.UStartDTAct)))
	c.emit(t.Add(10*time.Millisecond), false, pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewU(iec104.UStartDTCon)))
	return t.Add(20 * time.Millisecond)
}

// interrogate emits the I100 exchange: act, actcon, the full point
// image grouped by type with COT=inrogen, then actterm.
func (c *conn) interrogate(t time.Time, o *topology.Outstation, pts []topology.Point) time.Time {
	gi := iec104.NewInterrogation(o.CommonAddr, iec104.CauseActivation)
	t = c.sendCommand(t, gi, iec104.CauseActConfirm)

	// Group points by type, chunked; non-sequence encoding keeps the
	// original scattered IOAs.
	byType := map[iec104.TypeID][]topology.Point{}
	var order []iec104.TypeID
	for _, p := range pts {
		if p.Type.IsCommand() {
			continue
		}
		if _, ok := byType[p.Type]; !ok {
			order = append(order, p.Type)
		}
		byType[p.Type] = append(byType[p.Type], p)
	}
	for _, typ := range order {
		group := byType[typ]
		for i := 0; i < len(group); i += 8 {
			end := i + 8
			if end > len(group) {
				end = len(group)
			}
			a := &iec104.ASDU{
				Type:       typ,
				COT:        iec104.COT{Cause: iec104.CauseInrogen},
				CommonAddr: o.CommonAddr,
			}
			for _, p := range group[i:end] {
				a.Objects = append(a.Objects, iec104.InfoObject{
					IOA:   p.IOA,
					Value: c.sim.valueFor(o, p, t),
				})
			}
			t = t.Add(20*time.Millisecond + c.jitter(15*time.Millisecond))
			c.sendI(t, []*iec104.ASDU{a})
		}
	}
	term := iec104.NewInterrogation(o.CommonAddr, iec104.CauseActTerm)
	t = t.Add(25 * time.Millisecond)
	c.emit(t, false, pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewI(c.recvNS, c.sendNS, term)))
	c.recvNS++
	return t.Add(25 * time.Millisecond)
}

// rejectCycle emits one rejected-backup attempt (Fig. 9): handshake,
// a server TESTFR act, and an outstation RST.
func (c *conn) rejectCycle(t time.Time) {
	t = c.handshake(t)
	t = t.Add(20*time.Millisecond + c.jitter(30*time.Millisecond))
	c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewU(iec104.UTestFRAct)))
	c.emit(t.Add(10*time.Millisecond+c.jitter(15*time.Millisecond)), false, pcap.FlagRST, nil)
}

// hangCycle emits a completed handshake and a server TESTFR act that
// is never answered and never reset: the flow stays open (long-lived)
// but the U16 token reaches the Markov analysis.
func (c *conn) hangCycle(t time.Time) {
	t = c.handshake(t)
	t = t.Add(20*time.Millisecond + c.jitter(30*time.Millisecond))
	c.emit(t, true, pcap.FlagPSH|pcap.FlagACK, c.apdu(iec104.NewU(iec104.UTestFRAct)))
}

// silentCycle emits SYN retries that are never answered (the flows the
// capture can only classify as long-lived).
func (c *conn) silentCycle(t time.Time) {
	c.emit(t, true, pcap.FlagSYN, nil)
	c.emit(t.Add(time.Second), true, pcap.FlagSYN, nil)
	c.emit(t.Add(3*time.Second), true, pcap.FlagSYN, nil)
}

// mathSin is a tiny indirection so value synthesis stays testable.
func mathSin(x float64) float64 { return math.Sin(x) }

// newBackgroundRand derives a deterministic source for background
// traffic generators.
func newBackgroundRand(seed int64, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*8191 + salt))
}
