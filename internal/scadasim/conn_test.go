package scadasim

import (
	"testing"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/pcap"
	"uncharted/internal/topology"
)

func testConn(t *testing.T) (*Simulator, *conn, *topology.Outstation) {
	t.Helper()
	cfg := DefaultConfig(topology.Y1, 3)
	cfg.Duration = time.Minute
	cfg.RetransmitProb = 0 // deterministic packet counts
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.world = buildPhysWorld(sim.cfg, sim.net, &sim.truth)
	o, _ := sim.net.Outstation("O1")
	c := newConn(sim, sim.net.ServerAddr("C1"), sim.port(), o)
	return sim, c, o
}

func TestConnHandshakeShape(t *testing.T) {
	_, c, _ := testConn(t)
	start := time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC)
	c.handshake(start)
	if len(c.recs) != 3 {
		t.Fatalf("%d packets", len(c.recs))
	}
	if !c.recs[0].Src.Addr().Is4() || c.recs[0].Flags != pcap.FlagSYN {
		t.Fatalf("first packet %+v", c.recs[0])
	}
	if c.recs[1].Flags != pcap.FlagSYN|pcap.FlagACK {
		t.Fatalf("second packet flags %v", c.recs[1].Flags)
	}
	if c.recs[2].Flags != pcap.FlagACK {
		t.Fatalf("third packet flags %v", c.recs[2].Flags)
	}
	// SYN consumes a sequence number.
	if c.recs[2].Seq != c.recs[0].Seq+1 {
		t.Fatalf("client seq %d after SYN at %d", c.recs[2].Seq, c.recs[0].Seq)
	}
}

func TestConnSendIAcksEveryWindow(t *testing.T) {
	sim, c, o := testConn(t)
	start := time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC)
	asdu := iec104.NewMeasurement(iec104.MMeNc, o.CommonAddr, 1001,
		iec104.Value{Kind: iec104.KindFloat, Float: 1}, iec104.CausePeriodic)
	for i := 0; i < sim.cfg.AckWindow; i++ {
		c.sendI(start.Add(time.Duration(i)*time.Second), []*iec104.ASDU{asdu})
	}
	// AckWindow I-packets plus exactly one S ack.
	var iPkts, sPkts int
	for _, r := range c.recs {
		apdus, _, err := iec104.ParseAPDUs(r.Payload, o.Profile)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range apdus {
			switch a.Format {
			case iec104.FormatI:
				iPkts++
			case iec104.FormatS:
				sPkts++
			}
		}
	}
	if iPkts != sim.cfg.AckWindow || sPkts != 1 {
		t.Fatalf("I=%d S=%d, want %d/1", iPkts, sPkts, sim.cfg.AckWindow)
	}
}

func TestConnSequenceNumbersAdvancePerAPDU(t *testing.T) {
	_, c, o := testConn(t)
	start := time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC)
	asdu := iec104.NewMeasurement(iec104.MMeNc, o.CommonAddr, 1001,
		iec104.Value{Kind: iec104.KindFloat, Float: 1}, iec104.CausePeriodic)
	c.sendI(start, []*iec104.ASDU{asdu, asdu, asdu})
	apdus, _, err := iec104.ParseAPDUs(c.recs[0].Payload, o.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if len(apdus) != 3 {
		t.Fatalf("%d APDUs in one segment", len(apdus))
	}
	for i, a := range apdus {
		if a.SendSeq != uint16(i) {
			t.Fatalf("APDU %d has N(S)=%d", i, a.SendSeq)
		}
	}
}

func TestConnInterrogateEmitsFullImage(t *testing.T) {
	sim, c, o := testConn(t)
	start := time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC)
	pts := sim.net.Points(o.ID, topology.Y1)
	c.interrogate(start, o, pts)

	var actcon, actterm bool
	reported := map[uint32]bool{}
	for _, r := range c.recs {
		apdus, _, err := iec104.ParseAPDUs(r.Payload, o.Profile)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range apdus {
			if a.Format != iec104.FormatI {
				continue
			}
			switch {
			case a.ASDU.Type == iec104.CIcNa && a.ASDU.COT.Cause == iec104.CauseActConfirm:
				actcon = true
			case a.ASDU.Type == iec104.CIcNa && a.ASDU.COT.Cause == iec104.CauseActTerm:
				actterm = true
			case a.ASDU.COT.Cause == iec104.CauseInrogen:
				for _, obj := range a.ASDU.Objects {
					reported[obj.IOA] = true
				}
			}
		}
	}
	if !actcon || !actterm {
		t.Fatalf("actcon=%t actterm=%t", actcon, actterm)
	}
	want := 0
	for _, p := range pts {
		if !p.Type.IsCommand() {
			want++
		}
	}
	if len(reported) != want {
		t.Fatalf("interrogation reported %d IOAs, want %d", len(reported), want)
	}
}

func TestRejectCycleEndsInRST(t *testing.T) {
	_, c, _ := testConn(t)
	c.rejectCycle(time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC))
	last := c.recs[len(c.recs)-1]
	if last.Flags&pcap.FlagRST == 0 {
		t.Fatalf("last flags %v", last.Flags)
	}
	// Exactly one U frame (the TESTFR act) before the reset.
	u := 0
	for _, r := range c.recs {
		if len(r.Payload) > 0 && r.Payload[0] == 0x68 {
			u++
		}
	}
	if u != 1 {
		t.Fatalf("%d APDUs in a reject cycle, want 1", u)
	}
}

func TestRetransmissionDuplicatesSegment(t *testing.T) {
	cfg := DefaultConfig(topology.Y1, 3)
	cfg.Duration = time.Minute
	cfg.RetransmitProb = 1 // always retransmit
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.world = buildPhysWorld(sim.cfg, sim.net, &sim.truth)
	o, _ := sim.net.Outstation("O1")
	c := newConn(sim, sim.net.ServerAddr("C1"), sim.port(), o)
	c.keepAlive(time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC))
	// Each of the two APDUs is followed by its duplicate with the
	// same sequence number.
	if len(c.recs) != 4 {
		t.Fatalf("%d records", len(c.recs))
	}
	if c.recs[0].Seq != c.recs[1].Seq || string(c.recs[0].Payload) != string(c.recs[1].Payload) {
		t.Fatal("duplicate does not match original")
	}
	if !c.recs[1].Time.After(c.recs[0].Time) {
		t.Fatal("duplicate not delayed")
	}
}

func TestPhysSeriesAt(t *testing.T) {
	base := time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC)
	ps := &PhysSeries{Samples: []PhysSample{
		{T: base, P: 1},
		{T: base.Add(time.Second), P: 2},
		{T: base.Add(2 * time.Second), P: 3},
	}}
	if _, ok := ps.At(base.Add(-time.Second)); ok {
		t.Fatal("sample before history")
	}
	if s, ok := ps.At(base.Add(1500 * time.Millisecond)); !ok || s.P != 2 {
		t.Fatalf("At(1.5s) = %+v %t", s, ok)
	}
	if s, _ := ps.At(base.Add(time.Hour)); s.P != 3 {
		t.Fatalf("At(future) = %+v", s)
	}
}
