package scadasim

import (
	"fmt"
	"math/rand"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
	"uncharted/internal/topology"
)

// Config parameterises one synthesized capture.
type Config struct {
	Year     topology.Year
	Start    time.Time
	Duration time.Duration
	Seed     int64

	// SampleInterval is the physical-world sampling period.
	SampleInterval time.Duration
	// KeepAlive is the secondary-connection TESTFR cadence (the
	// network the paper measured averaged ~30 s).
	KeepAlive time.Duration
	// RejectRetry is how often a control server re-dials a backup
	// connection that keeps getting reset (T0-driven reconnects).
	RejectRetry time.Duration
	// SilentRetry is the re-dial cadence toward outstations that drop
	// backup SYNs without answering.
	SilentRetry time.Duration
	// CyclePeriod is the graceful reconnect period of "cycling"
	// stations (closing with FIN and re-opening with STARTDT + GI);
	// zero disables cycling.
	CyclePeriod time.Duration
	// CycleStations caps how many stations cycle.
	CycleStations int
	// AckWindow is the IEC 104 w parameter: S-format every w I-frames.
	AckWindow int
	// RetransmitProb duplicates data segments at the TCP layer.
	RetransmitProb float64
	// DisableBackground suppresses the non-IEC-104 industrial traffic
	// (C37.118 synchrophasors, ICCP) the paper's tap also carried.
	DisableBackground bool
	// EnableModbus adds a Modbus/TCP polling association to the trace
	// (off by default so existing captures stay byte-identical).
	EnableModbus bool
	// Faults degrades every protocol server in the simulation; the zero
	// value leaves the trace untouched.
	Faults Faults
}

// Faults models a degraded field device or access link, applied
// uniformly to every protocol server the simulator runs (IEC 104
// outstations, C37.118 PMUs, ICCP peers, Modbus outstations). The
// zero value is a healthy network: no fault draws are made, so
// enabling any single knob never perturbs the others' streams.
type Faults struct {
	// Delay shifts every payload-carrying segment later by a fixed
	// amount (serialisation/processing latency).
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) on top.
	Jitter time.Duration
	// TimeoutProb drops a device response entirely: the request stands,
	// the reply never arrives.
	TimeoutProb float64
	// ShortReadProb splits an application frame across two TCP
	// segments, forcing the analyzer's codecs to buffer partial frames.
	ShortReadProb float64
}

// active reports whether any fault knob is set.
func (f Faults) active() bool {
	return f.Delay != 0 || f.Jitter != 0 || f.TimeoutProb != 0 || f.ShortReadProb != 0
}

// DefaultConfig returns the calibrated settings for a capture year.
// Y1 captures totalled ~8 h and Y2 ~3 h; the default durations keep
// that 8:3 ratio at laptop scale (divide-by-12). Y1 contains the
// silently-dropped backups that dominate its long-lived flow count;
// by Y2 those RTUs answered with RSTs and a batch of stations cycled
// their connections gracefully, matching Table 3's proportions.
func DefaultConfig(year topology.Year, seed int64) Config {
	cfg := Config{
		Year:           year,
		Start:          time.Date(2019, 3, 11, 9, 0, 0, 0, time.UTC),
		Duration:       40 * time.Minute,
		Seed:           seed,
		SampleInterval: time.Second,
		KeepAlive:      30 * time.Second,
		RejectRetry:    5 * time.Second,
		SilentRetry:    4 * time.Second,
		AckWindow:      8,
		RetransmitProb: 0.004,
		CyclePeriod:    12 * time.Minute,
		CycleStations:  6,
	}
	if year == topology.Y2 {
		cfg.Start = time.Date(2020, 3, 9, 9, 0, 0, 0, time.UTC)
		cfg.Duration = 15 * time.Minute
		cfg.CyclePeriod = 5 * time.Minute
		cfg.CycleStations = 17
		// By Y2 the operator's servers re-dialed refused backups much
		// more aggressively (T0 tightened), which is what pushes the
		// short-lived share from 74% to 94% in Table 3.
		cfg.RejectRetry = 2 * time.Second
	}
	return cfg
}

// genSyncOutstation names the outstation whose generator performs the
// Fig. 20 synchronisation during the capture.
func (c Config) genSyncOutstation() topology.OutstationID { return "O29" }

// clockSyncStations receive C_CS_NA_1 (I103) clock synchronisation
// commands — 3 stations per Table 8.
var clockSyncStations = map[topology.OutstationID]bool{"O3": true, "O39": true, "O47": true}

// endOfInitStations emit M_EI_NA_1 (I70) when (re)activated — 2
// stations per Table 8.
var endOfInitStations = map[topology.OutstationID]bool{"O12": true, "O34": true}

// Simulator generates one capture.
type Simulator struct {
	cfg   Config
	net   *topology.Network
	world *physWorld
	truth GroundTruth
	rng   *rand.Rand

	nextPort uint16
	records  []Record

	metrics *simMetrics
	journal *obs.Journal
}

// Instrument books the simulator's generation counters into reg and
// attaches an optional event journal. Call before Run; either argument
// may be nil.
func (s *Simulator) Instrument(reg *obs.Registry, j *obs.Journal) {
	if reg != nil {
		s.metrics = newSimMetrics(reg)
	}
	s.journal = j
}

// New builds a simulator over the paper's topology.
func New(cfg Config) (*Simulator, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("scadasim: non-positive duration %v", cfg.Duration)
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = time.Second
	}
	if cfg.AckWindow <= 0 {
		cfg.AckWindow = 8
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 30 * time.Second
	}
	s := &Simulator{
		cfg:      cfg,
		net:      topology.Build(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nextPort: 30000,
	}
	s.truth.Year = int(cfg.Year)
	return s, nil
}

// Network exposes the topology driving the simulation.
func (s *Simulator) Network() *topology.Network { return s.net }

func (s *Simulator) port() uint16 {
	s.nextPort++
	return s.nextPort
}

func (s *Simulator) end() time.Time { return s.cfg.Start.Add(s.cfg.Duration) }

// Run produces the trace.
func (s *Simulator) Run() (*Trace, error) {
	s.world = buildPhysWorld(s.cfg, s.net, &s.truth)

	cycling := s.pickCyclingStations()
	for _, o := range s.net.OutstationsIn(s.cfg.Year) {
		s.generateOutstation(o, cycling[o.ID])
	}
	if !s.cfg.DisableBackground {
		s.generateBackground()
	}
	if s.cfg.EnableModbus {
		s.generateModbus()
	}
	sortRecords(s.records)
	return &Trace{Records: s.records, Truth: s.truth}, nil
}

// pickCyclingStations selects which I-transmitting stations close and
// re-open their primary connection during the capture.
func (s *Simulator) pickCyclingStations() map[topology.OutstationID]bool {
	out := map[topology.OutstationID]bool{}
	if s.cfg.CyclePeriod <= 0 || s.cfg.CycleStations <= 0 {
		return out
	}
	n := 0
	// Type 4 stations cycle first: their reconnects alternate between
	// the two servers, which is what makes them "I-format to both
	// servers" in the merged classification.
	for _, wantType4 := range []bool{true, false} {
		for _, o := range s.net.OutstationsIn(s.cfg.Year) {
			if n >= s.cfg.CycleStations {
				return out
			}
			if !o.SendsIFormat() || o.ConnType == topology.Type8 || out[o.ID] {
				continue
			}
			if (o.ConnType == topology.Type4) != wantType4 {
				continue
			}
			out[o.ID] = true
			n++
		}
	}
	return out
}

// generateOutstation emits every connection of one RTU.
func (s *Simulator) generateOutstation(o *topology.Outstation, cycles bool) {
	activeIdx := 0
	// Type 4 stations switched primaries between the capture years.
	if o.ConnType == topology.Type4 && s.cfg.Year == topology.Y2 {
		activeIdx = 1
	}
	active := o.Servers[activeIdx]
	backup := o.Servers[1-activeIdx]

	if o.Behavior.TestingOnly {
		s.generateTesting(o)
		return
	}

	switch o.ConnType {
	case topology.Type1, topology.Type4:
		s.generatePrimary(o, active, cycles, time.Time{})
	case topology.Type2:
		s.generatePrimary(o, active, cycles, time.Time{})
		s.generateKeepAliveConn(o, backup)
	case topology.Type5:
		s.generatePrimary(o, active, false, time.Time{})
	case topology.Type3:
		// Redundant backup RTU: keep-alives to both servers.
		s.generateKeepAliveConn(o, o.Servers[0])
		s.generateKeepAliveConn(o, o.Servers[1])
	case topology.Type6:
		s.generatePrimary(o, otherServer(o, o.Behavior.RejectBackupFrom), cycles, time.Time{})
		s.generateRejected(o, o.Behavior.RejectBackupFrom)
	case topology.Type7:
		s.generateKeepAliveConn(o, otherServer(o, o.Behavior.RejectBackupFrom))
		s.generateRejected(o, o.Behavior.RejectBackupFrom)
	case topology.Type8:
		// Switchover mid-capture: primary on `active` closes, the
		// backup is promoted with STARTDT + interrogation. The stagger
		// keeps every switchover strictly inside the capture window.
		stagger := s.cfg.Duration / 64 * time.Duration(topology.Num(o.ID)%12)
		switchAt := s.cfg.Start.Add(s.cfg.Duration/2 + stagger)
		s.generatePrimary(o, active, false, switchAt)
		s.generatePromoted(o, backup, switchAt)
	}
}

func otherServer(o *topology.Outstation, sid topology.ServerID) topology.ServerID {
	if o.Servers[0] == sid {
		return o.Servers[1]
	}
	return o.Servers[0]
}

// generateTesting emits the C4-O22 commissioning exchange: four widely
// spaced packets (two TESTFR pairs) on a pre-existing connection.
func (s *Simulator) generateTesting(o *topology.Outstation) {
	c := newConn(s, s.net.ServerAddr(o.Servers[1]), s.port(), o)
	gap := s.cfg.Duration / 3
	c.keepAlive(s.cfg.Start.Add(gap / 2))
	c.keepAlive(s.cfg.Start.Add(gap/2 + 2*gap))
	s.flush(c, ConnTruth{
		Server: string(o.Servers[1]), Outstation: string(o.ID),
		Role: RoleSecondary, Testing: true,
	})
}

// generateKeepAliveConn emits a persistent secondary connection:
// TESTFR act/con at the keep-alive cadence. No SYN or FIN appears in
// the capture window, so the flow is long-lived.
func (s *Simulator) generateKeepAliveConn(o *topology.Outstation, sid topology.ServerID) {
	c := newConn(s, s.net.ServerAddr(sid), s.port(), o)
	// The KeepAliveInterval override is the C2-O30 misconfiguration:
	// the paper observed it only on the *rejected* channel (handled by
	// generateRejected); this RTU's healthy connection keep-alives at
	// the network-wide cadence.
	interval := s.cfg.KeepAlive
	for t := s.cfg.Start.Add(c.jitter(interval)); t.Before(s.end()); t = t.Add(interval) {
		c.keepAlive(t)
	}
	s.flush(c, ConnTruth{
		Server: string(sid), Outstation: string(o.ID), Role: RoleSecondary,
	})
}

// generateRejected emits the reset-backup pathology: the server
// re-dials forever; each attempt is a fresh 4-tuple ending in an RST
// (or, for silent stations in Y1, unanswered SYNs).
func (s *Simulator) generateRejected(o *topology.Outstation, sid topology.ServerID) {
	serverAddr := s.net.ServerAddr(sid)
	silent := o.Behavior.SilentDropBackup && s.cfg.Year == topology.Y1
	interval := s.cfg.RejectRetry
	if silent {
		interval = s.cfg.SilentRetry
	}
	if o.Behavior.KeepAliveInterval > 0 && s.cfg.Year == topology.Y1 {
		// The misconfigured timer (C2-O30): attempts every 430 s. The
		// operator fixed it after the first capture's disclosure
		// (§6.3.2), so the Y2 trace re-dials at the network-wide
		// cadence — one of the planted longitudinal changes.
		interval = o.Behavior.KeepAliveInterval
	}
	first := s.cfg.Start.Add(time.Duration(topology.Num(o.ID)%10) * interval / 10)
	attempt := 0
	for t := first; t.Before(s.end()); t = t.Add(interval) {
		c := newConn(s, serverAddr, s.port(), o)
		if attempt > 0 {
			// Every attempt after the first is a T0-expiry-driven
			// reconnect of the same logical backup channel.
			s.metrics.noteT0Redial()
			s.journal.Log(t, obs.EventTimerFired, c.client.String()+">"+c.server.String(), map[string]any{
				"timer":      "t0",
				"interval":   interval.String(),
				"attempt":    attempt,
				"outstation": string(o.ID),
			})
		}
		hung := false
		switch {
		case silent && attempt%8 == 7:
			// Even the silent stations intermittently complete a
			// handshake, swallow the server's TESTFR and hang — that
			// is why the paper still sees them at the Markov point
			// (1,1) while most of their attempts leave only
			// unanswered SYNs (long-lived flows).
			c.hangCycle(t)
			hung = true
		case silent:
			c.silentCycle(t)
		default:
			c.rejectCycle(t)
		}
		attempt++
		s.flush(c, ConnTruth{
			Server: string(sid), Outstation: string(o.ID), Role: RoleSecondary,
			Rejected: !silent || hung, Silent: silent && !hung,
		})
	}
}

// generatePromoted emits a Type 8 backup connection: keep-alives until
// the switchover, then STARTDT, interrogation and regular reporting.
func (s *Simulator) generatePromoted(o *topology.Outstation, sid topology.ServerID, switchAt time.Time) {
	c := newConn(s, s.net.ServerAddr(sid), s.port(), o)
	for t := s.cfg.Start.Add(c.jitter(s.cfg.KeepAlive)); t.Before(switchAt); t = t.Add(s.cfg.KeepAlive) {
		c.keepAlive(t)
	}
	pts := s.net.Points(o.ID, s.cfg.Year)
	t := c.startDT(switchAt.Add(300 * time.Millisecond))
	t = s.maybeEndOfInit(c, o, t)
	t = c.interrogate(t, o, pts)
	s.reportLoop(c, o, pts, t, s.end())
	s.flush(c, ConnTruth{
		Server: string(sid), Outstation: string(o.ID), Role: RoleSecondary,
		Switchover: true, Interro: true,
	})
}

// generatePrimary emits the main data connection. If closeAt is
// non-zero the connection ends there with a FIN (switchover). When
// cycles is true the connection periodically closes and re-opens with
// a fresh handshake, STARTDT and interrogation.
func (s *Simulator) generatePrimary(o *topology.Outstation, sid topology.ServerID, cycles bool, closeAt time.Time) {
	pts := s.net.Points(o.ID, s.cfg.Year)
	serverAddr := s.net.ServerAddr(sid)
	endAll := s.end()
	if !closeAt.IsZero() && closeAt.Before(endAll) {
		endAll = closeAt
	}

	if !cycles {
		c := newConn(s, serverAddr, s.port(), o)
		s.reportLoop(c, o, pts, s.cfg.Start, endAll)
		if !closeAt.IsZero() {
			c.finClose(endAll)
		}
		s.flush(c, ConnTruth{
			Server: string(sid), Outstation: string(o.ID), Role: RolePrimary,
			Switchover: !closeAt.IsZero(),
		})
		return
	}

	// Cycling: the first segment pre-dates the capture (long-lived),
	// subsequent segments are complete SYN..FIN lifecycles. Type 4
	// stations alternate servers between segments — over a capture
	// they send I-format data to both control servers.
	segStart := s.cfg.Start
	firstSegment := true
	segIdx := 0
	period := s.cfg.CyclePeriod
	for segStart.Before(endAll) {
		// Stagger segment lengths per station by up to half a period
		// so reconnects don't synchronise; the offset scales with the
		// period so short captures keep strictly positive segments.
		stagger := period / 32 * time.Duration(topology.Num(o.ID)%16)
		segEnd := segStart.Add(period - stagger)
		if segEnd.After(endAll) {
			segEnd = endAll
		}
		segServer := serverAddr
		if o.ConnType == topology.Type4 && segIdx%2 == 1 {
			segServer = s.net.ServerAddr(otherServer(o, sid))
		}
		segIdx++
		c := newConn(s, segServer, s.port(), o)
		t := segStart
		interro := false
		if !firstSegment {
			t = c.handshake(t)
			t = c.startDT(t.Add(50 * time.Millisecond))
			t = s.maybeEndOfInit(c, o, t)
			t = c.interrogate(t, o, pts)
			interro = true
		}
		s.reportLoop(c, o, pts, t, segEnd)
		if segEnd.Before(endAll) {
			c.finClose(segEnd)
		}
		s.flush(c, ConnTruth{
			Server: string(sid), Outstation: string(o.ID), Role: RolePrimary,
			Interro: interro,
		})
		segStart = segEnd.Add(2*time.Second + c.jitter(3*time.Second))
		firstSegment = false
	}
}

// maybeEndOfInit emits M_EI_NA_1 for the Table 8 stations that report
// end-of-initialization on activation.
func (s *Simulator) maybeEndOfInit(c *conn, o *topology.Outstation, t time.Time) time.Time {
	if !endOfInitStations[o.ID] {
		return t
	}
	a := &iec104.ASDU{
		Type:       iec104.MEiNa,
		COT:        iec104.COT{Cause: iec104.CauseInitialized},
		CommonAddr: o.CommonAddr,
		Objects:    []iec104.InfoObject{{IOA: 0, Value: iec104.Value{Kind: iec104.KindQualifier}}},
	}
	c.sendI(t, []*iec104.ASDU{a})
	return t.Add(30 * time.Millisecond)
}
