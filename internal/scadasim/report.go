package scadasim

import (
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/powersim"
	"uncharted/internal/topology"
)

// spontaneous thresholds per physical kind: a value must move this far
// from the last transmitted one to trigger a COT=spont report.
var spontThreshold = map[topology.PointKind]float64{
	topology.KindActivePower:   1.2,
	topology.KindReactivePower: 0.8,
	topology.KindVoltage:       0.45,
	topology.KindCurrent:       0.06,
	topology.KindFrequency:     0.008,
	topology.KindStatus:        0.5,
	topology.KindOther:         1.0,
}

// pointState tracks per-point reporting state inside one reportLoop.
type pointState struct {
	nextDue  time.Time
	lastSent float64
	sentOnce bool
}

// reportLoop walks the window [from, to) and emits the outstation's
// I-format traffic on connection c: periodic reports, spontaneous
// threshold crossings, AGC setpoint exchanges, clock synchronisation
// and idle keep-alives (T3).
func (s *Simulator) reportLoop(c *conn, o *topology.Outstation, pts []topology.Point, from, to time.Time) {
	if !from.Before(to) {
		return
	}
	states := make([]pointState, len(pts))
	for i, p := range pts {
		if p.Period > 0 {
			states[i].nextDue = from.Add(c.jitter(p.Period))
		}
	}

	// Pre-slice this window's AGC commands for the station's generator.
	var agc []powersim.SetpointCommand
	if o.ReceivesAGC {
		if gen, ok := s.world.genOf[o.ID]; ok {
			for _, cmd := range s.world.commandsFor(gen) {
				if !cmd.Time.Before(from) && cmd.Time.Before(to) {
					agc = append(agc, cmd)
				}
			}
		}
	}
	agcIdx := 0

	var clockNext time.Time
	if clockSyncStations[o.ID] {
		clockNext = from.Add(2*time.Minute + c.jitter(time.Minute))
	}

	t3 := s.cfg.KeepAlive
	lastActivity := from

	thresholdScale := 1.0
	if o.Behavior.SpontaneousOnly {
		// The Type 5 misconfiguration: thresholds so wide the control
		// room sees stale data, and T3 keep-alives fire between the
		// sparse spontaneous reports.
		thresholdScale = 40
	}

	step := s.cfg.SampleInterval
	for t := from; t.Before(to); t = t.Add(step) {
		var due []*iec104.ASDU

		for i := range pts {
			p := pts[i]
			if p.Type.IsCommand() {
				continue
			}
			st := &states[i]
			v := s.valueFor(o, p, t)
			switch {
			case p.Period > 0 && !st.nextDue.After(t):
				due = append(due, s.measurementASDU(o, p, v, iec104.CausePeriodic, t))
				st.nextDue = st.nextDue.Add(p.Period)
				st.lastSent = v.Float
				st.sentOnce = true
			case p.Period > 0 && p.Kind == topology.KindStatus &&
				st.sentOnce && v.Float != st.lastSent:
				// Status points refresh cyclically but a breaker state
				// change goes out immediately as a spontaneous report
				// — otherwise the Fig. 21 signature would see power
				// flow before the (stale) breaker-close report.
				due = append(due, s.measurementASDU(o, p, v, iec104.CauseSpontaneous, t))
				st.lastSent = v.Float
			case p.Period == 0:
				thr := spontThreshold[p.Kind] * thresholdScale
				if p.Kind == topology.KindStatus {
					thr = 0.5 // any state change
				}
				if !st.sentOnce || absFloat(v.Float-st.lastSent) >= thr {
					due = append(due, s.measurementASDU(o, p, v, iec104.CauseSpontaneous, t))
					st.lastSent = v.Float
					st.sentOnce = true
				}
			}
		}

		if len(due) > 0 {
			// Pack up to three ASDUs per TCP segment, like real RTUs
			// flushing their transmit queue.
			at := t.Add(c.jitter(200 * time.Millisecond))
			for i := 0; i < len(due); i += 3 {
				end := i + 3
				if end > len(due) {
					end = len(due)
				}
				c.sendI(at, due[i:end])
				at = at.Add(5 * time.Millisecond)
			}
			lastActivity = t
		}

		for agcIdx < len(agc) && !agc[agcIdx].Time.After(t) {
			cmd := agc[agcIdx]
			agcIdx++
			sp := iec104.NewSetpointFloat(o.CommonAddr, setpointIOA(pts), cmd.MW, iec104.CauseActivation)
			c.sendCommand(t.Add(250*time.Millisecond), sp, iec104.CauseActConfirm)
			lastActivity = t
		}

		if !clockNext.IsZero() && !clockNext.After(t) {
			cs := &iec104.ASDU{
				Type:       iec104.CCsNa,
				COT:        iec104.COT{Cause: iec104.CauseActivation},
				CommonAddr: o.CommonAddr,
				Objects: []iec104.InfoObject{{IOA: 0, Value: iec104.Value{
					Kind: iec104.KindNone, HasTime: true,
					Time: iec104.CP56Time2a{Time: t},
				}}},
			}
			c.sendCommand(t.Add(400*time.Millisecond), cs, iec104.CauseActConfirm)
			clockNext = clockNext.Add(10 * time.Minute)
			lastActivity = t
		}

		if t.Sub(lastActivity) >= t3 {
			c.keepAlive(t.Add(c.jitter(300 * time.Millisecond)))
			lastActivity = t
		}
	}
}

// setpointIOA finds the AGC setpoint object address (7001 by
// convention, but read it from the point list).
func setpointIOA(pts []topology.Point) uint32 {
	for _, p := range pts {
		if p.Kind == topology.KindSetpoint {
			return p.IOA
		}
	}
	return 7001
}

// measurementASDU renders one point sample as an ASDU in the station's
// native type.
func (s *Simulator) measurementASDU(o *topology.Outstation, p topology.Point, v iec104.Value, cause iec104.Cause, t time.Time) *iec104.ASDU {
	if p.Type.HasTimeTag() {
		v.HasTime = true
		v.Time = iec104.CP56Time2a{Time: t}
	}
	return iec104.NewMeasurement(p.Type, o.CommonAddr, p.IOA, v, cause)
}

// valueFor samples the physical world (or the synthetic fallback) for
// one point at time t and wraps it in the point's element kind.
func (s *Simulator) valueFor(o *topology.Outstation, p topology.Point, t time.Time) iec104.Value {
	var raw float64
	genName, isGen := s.world.genOf[o.ID]
	var sample PhysSample
	var haveSample bool
	if isGen {
		if series, ok := s.world.series[genName]; ok {
			sample, haveSample = series.At(t)
		}
	}
	if haveSample {
		switch p.Kind {
		case topology.KindActivePower:
			raw = sample.P
		case topology.KindReactivePower:
			raw = sample.Q
		case topology.KindVoltage:
			// Generator substations meter both sides of the step-up
			// transformer (Fig. 20 plots both); alternate the sides
			// across the station's voltage points.
			if p.IOA%4 == 3 {
				raw = sample.UTerm // transformer input (generator) side
			} else {
				raw = sample.UGrid // output side
			}
		case topology.KindCurrent:
			raw = sample.Current
		case topology.KindFrequency:
			raw = sample.Freq
		case topology.KindStatus:
			raw = float64(sample.Breaker)
		default:
			raw = s.syntheticValue(o, p, t)
		}
	} else {
		raw = s.syntheticValue(o, p, t)
	}
	return wrapValue(p.Type, raw)
}

// syntheticValue produces a smooth, deterministic signal for points not
// backed by a generator: a base level derived from the IOA with slow
// sinusoidal drift, so spontaneous thresholds trip occasionally.
func (s *Simulator) syntheticValue(o *topology.Outstation, p topology.Point, t time.Time) float64 {
	base := 40 + float64((uint32(o.CommonAddr)*31+p.IOA)%180)
	switch p.Kind {
	case topology.KindVoltage:
		base = 110 + float64(p.IOA%40)
	case topology.KindFrequency:
		base = 60
	case topology.KindStatus:
		return 1 // static status for non-generator points
	case topology.KindCurrent:
		base = 0.4 + float64(p.IOA%10)/10
	}
	phase := float64(p.IOA%17) * 0.37
	sec := t.Sub(s.cfg.Start).Seconds()
	wobble := 0.004*base*mathSin(sec/47+phase) + 0.02*mathSin(sec/7+phase*2)
	if p.Kind == topology.KindFrequency {
		wobble = 0.01 * mathSin(sec/31+phase)
	}
	return base + wobble
}

// wrapValue fits a raw float into the element kind of a type ID.
func wrapValue(t iec104.TypeID, raw float64) iec104.Value {
	switch t {
	case iec104.MMeNa, iec104.MMeTd, iec104.MMeNd:
		// Normalized values: scale into [-1, 1) against a 400-unit
		// full range (the per-point engineering scaling real systems
		// configure out of band).
		return iec104.Value{Kind: iec104.KindNormalized, Float: clamp(raw/400, -1, 0.99997)}
	case iec104.MMeNb, iec104.MMeTe:
		return iec104.Value{Kind: iec104.KindScaled, Float: float64(int16(clamp(raw*10, -32768, 32767)))}
	case iec104.MSpNa, iec104.MSpTb:
		bit := uint32(0)
		if raw >= 1 {
			bit = 1
		}
		return iec104.Value{Kind: iec104.KindSingle, Bits: bit, Float: float64(bit)}
	case iec104.MDpNa, iec104.MDpTb:
		st := uint32(raw)
		if st > 3 {
			st = 3
		}
		return iec104.Value{Kind: iec104.KindDouble, Bits: st, Float: float64(st)}
	case iec104.MStNa, iec104.MStTb:
		return iec104.Value{Kind: iec104.KindStep, Float: clamp(raw/10, -64, 63)}
	case iec104.MBoNa, iec104.MBoTb:
		return iec104.Value{Kind: iec104.KindBitstring, Bits: uint32(int64(raw)) & 0xFFFF, Float: raw}
	default:
		return iec104.Value{Kind: iec104.KindFloat, Float: raw}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absFloat(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// flush appends a connection's records and truth entry to the trace.
func (s *Simulator) flush(c *conn, truth ConnTruth) {
	s.records = append(s.records, c.recs...)
	s.truth.Connections = append(s.truth.Connections, truth)
	s.metrics.noteConn(truth)
	s.journalConn(c, truth)
}
