package scadasim

import (
	"fmt"
	"net/netip"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/topology"
)

// AttackKind selects an injected attack scenario, modelled after the
// Industroyer malware the paper discusses: once a TCP connection to an
// outstation is up, the malware runs an ICS reconnaissance phase
// (discovering ASDU addresses and IOAs) and then issues control
// commands.
type AttackKind int

// Attack scenarios.
const (
	// AttackRecon performs reconnaissance: STARTDT, a general
	// interrogation, then iterative read commands sweeping an IOA
	// range (Industroyer's discovery loop).
	AttackRecon AttackKind = iota
	// AttackBreakerTrip sends single/double commands flipping
	// breakers — the Ukraine blackout pattern.
	AttackBreakerTrip
	// AttackSetpointTamper sends AGC setpoints far outside the
	// physical envelope.
	AttackSetpointTamper
)

func (k AttackKind) String() string {
	switch k {
	case AttackRecon:
		return "recon"
	case AttackBreakerTrip:
		return "breaker-trip"
	case AttackSetpointTamper:
		return "setpoint-tamper"
	}
	return fmt.Sprintf("attack(%d)", int(k))
}

// AttackConfig parameterises InjectAttack.
type AttackConfig struct {
	Kind AttackKind
	// At is when the attack starts (must fall inside the trace).
	At time.Time
	// Attacker is the source address; the zero value uses a rogue
	// host inside the control-centre subnet (a compromised
	// workstation). Set it to a control server's address to model an
	// insider/compromised-server scenario.
	Attacker netip.Addr
	// Targets lists outstation IDs; empty picks the first three
	// I-transmitting stations.
	Targets []topology.OutstationID
	// ReconIOAs is the sweep width for AttackRecon (default 24).
	ReconIOAs int
}

// DefaultAttacker is the rogue workstation address used when
// AttackConfig.Attacker is unset.
var DefaultAttacker = netip.AddrFrom4([4]byte{10, 0, 0, 66})

// InjectAttack synthesizes the attack packets against the simulator's
// topology and appends them to the trace (re-sorting by time). It
// returns the number of packets injected. The trace's ground truth is
// annotated so benchmarks can verify detection.
func (s *Simulator) InjectAttack(tr *Trace, cfg AttackConfig) (int, error) {
	if cfg.At.Before(s.cfg.Start) || !cfg.At.Before(s.end()) {
		return 0, fmt.Errorf("scadasim: attack time %v outside capture window", cfg.At)
	}
	attacker := cfg.Attacker
	if !attacker.IsValid() {
		attacker = DefaultAttacker
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		for _, o := range s.net.OutstationsIn(s.cfg.Year) {
			if o.SendsIFormat() {
				targets = append(targets, o.ID)
				if len(targets) == 3 {
					break
				}
			}
		}
	}
	reconIOAs := cfg.ReconIOAs
	if reconIOAs <= 0 {
		reconIOAs = 24
	}

	before := len(tr.Records)
	t := cfg.At
	for _, id := range targets {
		o, ok := s.net.Outstation(id)
		if !ok || !o.PresentIn(s.cfg.Year) {
			return 0, fmt.Errorf("scadasim: attack target %s not in the %v network", id, s.cfg.Year)
		}
		c := newConn(s, attacker, s.port(), o)
		at := c.handshake(t)
		at = c.startDT(at.Add(30 * time.Millisecond))
		switch cfg.Kind {
		case AttackRecon:
			at = c.interrogate(at, o, s.net.Points(id, s.cfg.Year))
			// Iterative read sweep: the discovery loop Industroyer
			// ran because it did not bother with I100 semantics.
			for ioa := uint32(1001); ioa < uint32(1001+reconIOAs); ioa++ {
				rd := &iec104.ASDU{
					Type:       iec104.CRdNa,
					COT:        iec104.COT{Cause: iec104.CauseRequest},
					CommonAddr: o.CommonAddr,
					Objects:    []iec104.InfoObject{{IOA: ioa, Value: iec104.Value{Kind: iec104.KindNone}}},
				}
				at = c.sendCommand(at.Add(40*time.Millisecond), rd, iec104.CauseRequest)
			}
		case AttackBreakerTrip:
			for i := 0; i < 6; i++ {
				sc := &iec104.ASDU{
					Type:       iec104.CDcNa,
					COT:        iec104.COT{Cause: iec104.CauseActivation},
					CommonAddr: o.CommonAddr,
					Objects: []iec104.InfoObject{{
						IOA: uint32(3001 + i),
						// DCO: double command "off" with execute.
						Value: iec104.Value{Kind: iec104.KindCommand, Bits: uint32(iec104.DoubleOff)},
					}},
				}
				at = c.sendCommand(at.Add(60*time.Millisecond), sc, iec104.CauseActConfirm)
			}
		case AttackSetpointTamper:
			for _, mw := range []float64{5000, -900, 12000} {
				sp := iec104.NewSetpointFloat(o.CommonAddr, 7001, mw, iec104.CauseActivation)
				at = c.sendCommand(at.Add(80*time.Millisecond), sp, iec104.CauseActConfirm)
			}
		}
		c.finClose(at.Add(50 * time.Millisecond))
		tr.Records = append(tr.Records, c.recs...)
		tr.Truth.Connections = append(tr.Truth.Connections, ConnTruth{
			Server: attacker.String(), Outstation: string(id), Role: RolePrimary,
			Interro: cfg.Kind == AttackRecon,
		})
		t = t.Add(2 * time.Second)
	}
	sortRecords(tr.Records)
	tr.Truth.Attack = &AttackTruth{
		Kind:     cfg.Kind,
		At:       cfg.At,
		Attacker: attacker,
		Targets:  targets,
		Packets:  len(tr.Records) - before,
	}
	return len(tr.Records) - before, nil
}

// AttackTruth records an injected attack for evaluation.
type AttackTruth struct {
	Kind     AttackKind
	At       time.Time
	Attacker netip.Addr
	Targets  []topology.OutstationID
	Packets  int
}
