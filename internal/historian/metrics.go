package historian

import "uncharted/internal/obs"

// Metric names exported by the historian.
const (
	MetricAppends     = "uncharted_historian_appends_total"
	MetricBlocks      = "uncharted_historian_blocks_total"
	MetricBytes       = "uncharted_historian_bytes_written_total"
	MetricRawBytes    = "uncharted_historian_raw_bytes_total"
	MetricRatio       = "uncharted_historian_compression_ratio"
	MetricFsyncs      = "uncharted_historian_fsyncs_total"
	MetricSegments    = "uncharted_historian_segments"
	MetricCompactions = "uncharted_historian_compactions_total"
	MetricTornBytes   = "uncharted_historian_torn_bytes_total"
)

// rawSampleBytes is the uncompressed footprint of one sample
// (8-byte timestamp + 8-byte float), the denominator of the
// compression ratio.
const rawSampleBytes = 16

// storeMetrics books the historian's counters; a nil receiver (no
// registry configured) is a no-op, mirroring the other packages.
type storeMetrics struct {
	appends  *obs.Counter
	blocks   *obs.Counter
	bytes    *obs.Counter
	raw      *obs.Counter
	ratio    *obs.Gauge
	fsyncs   *obs.Counter
	segments *obs.Gauge
	compact  map[string]*obs.Counter
	torn     *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp(MetricAppends, "Samples appended to the historian.")
	reg.SetHelp(MetricBlocks, "Compressed blocks flushed to segments.")
	reg.SetHelp(MetricBytes, "Record bytes written to segment files.")
	reg.SetHelp(MetricRawBytes, "Uncompressed equivalent (16 B/sample) of flushed samples.")
	reg.SetHelp(MetricRatio, "Raw-to-record compression ratio of flushed data.")
	reg.SetHelp(MetricFsyncs, "Batched fsyncs of the active segment.")
	reg.SetHelp(MetricSegments, "Segment files currently open (sealed + active).")
	reg.SetHelp(MetricCompactions, "Compaction actions by kind (drop, downsample).")
	reg.SetHelp(MetricTornBytes, "Torn tail bytes truncated during crash recovery.")
	return &storeMetrics{
		appends:  reg.Counter(MetricAppends),
		blocks:   reg.Counter(MetricBlocks),
		bytes:    reg.Counter(MetricBytes),
		raw:      reg.Counter(MetricRawBytes),
		ratio:    reg.Gauge(MetricRatio),
		fsyncs:   reg.Counter(MetricFsyncs),
		segments: reg.Gauge(MetricSegments),
		compact: map[string]*obs.Counter{
			"drop":       reg.Counter(MetricCompactions, "kind", "drop"),
			"downsample": reg.Counter(MetricCompactions, "kind", "downsample"),
		},
		torn: reg.Counter(MetricTornBytes),
	}
}

func (m *storeMetrics) noteAppend() {
	if m == nil {
		return
	}
	m.appends.Inc()
}

func (m *storeMetrics) noteBlock(samples, payloadBytes, recordBytes int) {
	if m == nil {
		return
	}
	m.blocks.Inc()
	m.bytes.Add(int64(recordBytes))
	m.raw.Add(int64(samples) * rawSampleBytes)
	if w := m.bytes.Value(); w > 0 {
		m.ratio.Set(float64(m.raw.Value()) / float64(w))
	}
}

func (m *storeMetrics) noteFsync() {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
}

func (m *storeMetrics) noteSegments(n int) {
	if m == nil {
		return
	}
	m.segments.Set(float64(n))
}

func (m *storeMetrics) noteCompaction(kind string) {
	if m == nil {
		return
	}
	if c, ok := m.compact[kind]; ok {
		c.Inc()
	}
}

func (m *storeMetrics) noteTorn(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.torn.Add(n)
}
