package historian

import (
	"time"

	"uncharted/internal/core"
	"uncharted/internal/obs/trace"
	"uncharted/internal/physical"
)

// Recorder bridges the analysis pipeline to the historian: it
// implements core.FrameObserver and appends every value-bearing
// information object of each accepted I-format APDU. It extracts
// samples with physical.EachValue under the same station/command
// resolution as physical.Store.Feed, so the durable history and the
// in-memory series are sample-for-sample identical — the property
// that makes historian-backed event detection reproduce live results
// exactly.
type Recorder struct {
	store *Store
	// lane is the optional flight-recorder lane StageHistorian spans
	// land on; nil costs one branch per frame.
	lane *trace.Lane
	// err keeps the first append failure so a disk problem is not
	// silently swallowed on the hot path.
	err error
}

// NewRecorder returns a FrameObserver writing into store.
func NewRecorder(store *Store) *Recorder { return &Recorder{store: store} }

// SetTraceLane attaches a flight-recorder lane; ObserveFrame then
// records one sampled StageHistorian span per value-bearing frame.
// The lane must belong to the goroutine that feeds this recorder.
func (r *Recorder) SetTraceLane(l *trace.Lane) { r.lane = l }

// ObserveFrame implements core.FrameObserver.
func (r *Recorder) ObserveFrame(ev core.FrameEvent) {
	if ev.ASDU == nil || r.err != nil {
		return
	}
	sp := r.lane.Start()
	// Mirrors the analyzer's Feed call: the point belongs to the
	// outstation; server-to-outstation I-frames are commands.
	command := !ev.FromOutstation
	key := PointKey{Station: ev.Outstation}
	typ := physical.IEC104Type(ev.ASDU.Type)
	n := 0
	physical.EachValue(ev.ASDU, ev.Time, func(ioa uint32, t time.Time, v float64) {
		n++
		key.IOA = ioa
		if err := r.store.Append(key, typ, command, physical.Sample{T: t, V: v}); err != nil {
			r.err = err
		}
	})
	r.lane.End(sp, trace.StageHistorian, n, -1)
}

// Err returns the first write error encountered, if any.
func (r *Recorder) Err() error { return r.err }
