package historian

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/physical"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// TestHistorianEventEquivalence is the acceptance check for replay-
// backed detection: a capture analysed once with the historian
// recording alongside the in-memory store must yield byte-identical
// event lists (generator sync, unmet load) whether the detectors read
// live series or historian queries.
func TestHistorianEventEquivalence(t *testing.T) {
	cfg := scadasim.DefaultConfig(topology.Y1, 5)
	cfg.Duration = 12 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}

	hist, err := Open(t.TempDir(), Options{FlushSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer hist.Close()
	rec := NewRecorder(hist)

	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	a.SetFrameObserver(rec)
	if err := a.ReadPCAP(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	store := a.Physical()

	// Sample-for-sample equivalence: every in-memory series must be
	// reproduced exactly by a historian query.
	for _, s := range store.All() {
		key := PointKey{Station: s.Key.Station, IOA: s.Key.IOA}
		got, err := hist.Query(key, time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(s.Samples) {
			t.Fatalf("%s: historian has %d samples, memory has %d", s.Key, len(got), len(s.Samples))
		}
		for i := range got {
			if !sampleEqual(got[i], s.Samples[i]) {
				t.Fatalf("%s: sample %d differs: %v vs %v", s.Key, i, got[i], s.Samples[i])
			}
		}
	}

	net := topology.Build()
	series := func(station topology.OutstationID, kind topology.PointKind) (*physical.Series, *physical.Series) {
		for _, p := range net.Points(station, topology.Y1) {
			if p.Kind != kind {
				continue
			}
			mem, ok := store.Get(physical.SeriesKey{Station: string(station), IOA: p.IOA})
			if !ok {
				continue
			}
			replayed, err := hist.SeriesFor(PointKey{Station: string(station), IOA: p.IOA}, time.Time{}, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			return mem, replayed
		}
		t.Fatalf("no %v series for %s", kind, station)
		return nil, nil
	}

	// Generator-synchronisation signature (Fig. 21).
	memV, histV := series("O29", topology.KindVoltage)
	memB, histB := series("O29", topology.KindStatus)
	memP, histP := series("O29", topology.KindActivePower)
	memSync := physical.DetectSync("O29", memV, memB, memP, physical.DefaultSyncConfig())
	histSync := physical.DetectSync("O29", histV, histB, histP, physical.DefaultSyncConfig())
	if !reflect.DeepEqual(memSync, histSync) {
		t.Fatalf("sync events differ:\nmemory:    %+v\nhistorian: %+v", memSync, histSync)
	}
	if len(memSync) == 0 {
		t.Fatal("no sync events detected; equivalence check is vacuous")
	}

	// Unmet-load excursion (Figs. 18/19) with AGC annotation.
	memF, histF := series("O29", topology.KindFrequency)
	var memSPs, histSPs []physical.View
	for _, s := range store.All() {
		if !s.Command {
			continue
		}
		memSPs = append(memSPs, s)
		replayed, err := hist.SeriesFor(PointKey{Station: s.Key.Station, IOA: s.Key.IOA}, time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		histSPs = append(histSPs, replayed)
	}
	memLoad := physical.DetectUnmetLoad(memF, memSPs, 60, 0.01)
	histLoad := physical.DetectUnmetLoad(histF, histSPs, 60, 0.01)
	if !reflect.DeepEqual(memLoad, histLoad) {
		t.Fatalf("unmet-load events differ:\nmemory:    %+v\nhistorian: %+v", memLoad, histLoad)
	}
	if len(memLoad) == 0 {
		t.Fatal("no unmet-load events detected; equivalence check is vacuous")
	}
}
