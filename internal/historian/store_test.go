package historian

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/physical"
)

var testBase = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

func feedN(t *testing.T, st *Store, key PointKey, n int, start time.Time, step time.Duration) []physical.Sample {
	t.Helper()
	samples := make([]physical.Sample, n)
	for i := 0; i < n; i++ {
		s := physical.Sample{T: start.Add(time.Duration(i) * step), V: float64(i)}
		samples[i] = s
		if err := st.Append(key, 13, false, s); err != nil {
			t.Fatal(err)
		}
	}
	return samples
}

// TestStoreQueryMergesDiskAndBuffer checks the core contract: a query
// sees flushed blocks and the unflushed in-memory tail as one ordered
// sequence.
func TestStoreQueryMergesDiskAndBuffer(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := PointKey{Station: "O29", IOA: 3001}
	want := feedN(t, st, key, 200, testBase, time.Second) // 3 blocks + 8 buffered

	got, err := st.Query(key, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	assertSamplesEqual(t, got, want)

	// Range bounds are inclusive and honour the sparse index.
	from, to := testBase.Add(50*time.Second), testBase.Add(59*time.Second)
	got, err = st.Query(key, from, to)
	if err != nil {
		t.Fatal(err)
	}
	assertSamplesEqual(t, got, want[50:60])
}

// TestStoreReopenResume closes a store cleanly and reopens it: the
// active segment is resumed with zero torn bytes and all data intact.
func TestStoreReopenResume(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{FlushSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	key := PointKey{Station: "O29", IOA: 3001}
	want := feedN(t, st, key, 100, testBase, time.Second)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st2, err := Open(dir, Options{FlushSamples: 32, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if torn := reg.Counter(MetricTornBytes).Value(); torn != 0 {
		t.Fatalf("clean close left %d torn bytes", torn)
	}
	got, err := st2.Query(key, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	assertSamplesEqual(t, got, want)

	// And the resumed segment accepts further appends.
	more := physical.Sample{T: testBase.Add(time.Hour), V: 1}
	if err := st2.Append(key, 13, false, more); err != nil {
		t.Fatal(err)
	}
	got, err = st2.Query(key, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	assertSamplesEqual(t, got, append(append([]physical.Sample(nil), want...), more))
}

// TestStoreCrashRecovery tears the active segment mid-record (as an
// interrupted write would) and reopens: the torn tail is truncated and
// at most the last unflushed block is lost.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{FlushSamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	key := PointKey{Station: "O29", IOA: 3001}
	want := feedN(t, st, key, 200, testBase, time.Second) // 4 full blocks
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: no Close, and the last record is half-written.
	names, err := segmentNames(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments: %v %v", names, err)
	}
	path := filepath.Join(dir, names[0])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-13); err != nil {
		t.Fatal(err)
	}
	st.closeAll() // release the fds; state is as-if killed

	reg := obs.NewRegistry()
	st2, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if torn := reg.Counter(MetricTornBytes).Value(); torn == 0 {
		t.Fatal("expected torn bytes after mid-record truncation")
	}
	got, err := st2.Query(key, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the last block (50 samples) is gone; everything before
	// the torn record survives.
	assertSamplesEqual(t, got, want[:150])
}

// TestStoreRotationAndSealedIndex forces segment rotation and checks
// that sealed segments reopen via their index footer (not a scan) with
// all data queryable.
func TestStoreRotationAndSealedIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{FlushSamples: 16, MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	key := PointKey{Station: "O29", IOA: 3001}
	want := feedN(t, st, key, 2000, testBase, time.Second)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", names)
	}
	// All but the last must carry a valid footer index.
	for _, name := range names[:len(names)-1] {
		seg, torn, err := openSegment(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !seg.sealed || torn != 0 {
			t.Fatalf("%s: sealed=%v torn=%d", name, seg.sealed, torn)
		}
		seg.close()
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Query(key, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	assertSamplesEqual(t, got, want)
}

// TestStoreCompactRetention ages out old sealed segments and
// downsamples mid-age ones, idempotently.
func TestStoreCompactRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{
		FlushSamples:    16,
		MaxSegmentBytes: 1024,
		Retention:       10 * 24 * time.Hour,
		DownsampleAfter: 24 * time.Hour,
		DownsampleStep:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := PointKey{Station: "O29", IOA: 3001}
	// Old data (dropped), mid-age data (downsampled), fresh data
	// (kept). Rotate between phases: retention works per segment, so
	// clean boundaries keep the ages separate.
	feedN(t, st, key, 400, testBase, time.Second)
	if err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	midBase := testBase.Add(5 * 24 * time.Hour)
	feedN(t, st, key, 400, midBase, time.Second)
	if err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	freshBase := testBase.Add(10 * 24 * time.Hour)
	fresh := feedN(t, st, key, 400, freshBase, time.Second)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	now := freshBase.Add(time.Hour)
	if err := st.Compact(now); err != nil {
		t.Fatal(err)
	}
	got, err := st.Query(key, time.Time{}, midBase.Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("retention left %d old samples", len(got))
	}
	mid, err := st.Query(key, midBase, midBase.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) == 0 || len(mid) >= 400 {
		t.Fatalf("downsampling kept %d samples, want 0 < n < 400", len(mid))
	}
	// 400 s of 1 Hz data at 1-minute buckets ≈ 7 samples.
	if len(mid) > 10 {
		t.Fatalf("downsampled to %d samples, want ≈7", len(mid))
	}
	freshGot, err := st.Query(key, freshBase, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	assertSamplesEqual(t, freshGot, fresh)

	// Idempotence: a second Compact must not change anything.
	if err := st.Compact(now); err != nil {
		t.Fatal(err)
	}
	mid2, err := st.Query(key, midBase, midBase.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	assertSamplesEqual(t, mid2, mid)
}

// TestStoreCatalogAndDownsample covers the catalog and bucketed query.
func TestStoreCatalogAndDownsample(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	k1 := PointKey{Station: "O29", IOA: 3001}
	k2 := PointKey{Station: "O7", IOA: 7001}
	feedN(t, st, k1, 100, testBase, time.Second)
	for i := 0; i < 50; i++ {
		s := physical.Sample{T: testBase.Add(time.Duration(i) * time.Second), V: 1}
		if err := st.Append(k2, 50, true, s); err != nil {
			t.Fatal(err)
		}
	}
	cat := st.Catalog()
	if len(cat) != 2 {
		t.Fatalf("catalog has %d points, want 2", len(cat))
	}
	// Sorted by station then IOA: O29 before O7 (lexicographic).
	if cat[0].Key != k1 || cat[1].Key != k2 {
		t.Fatalf("catalog order: %v", cat)
	}
	if cat[0].Samples != 100 || cat[0].Command || cat[1].Samples != 50 || !cat[1].Command {
		t.Fatalf("catalog rows wrong: %+v", cat)
	}
	if cat[0].First != testBase || cat[0].Last != testBase.Add(99*time.Second) {
		t.Fatalf("catalog extent wrong: %+v", cat[0])
	}

	buckets, err := st.Downsample(k1, time.Time{}, time.Time{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2", len(buckets))
	}
	b := buckets[0]
	if b.Count != 60 || b.Min != 0 || b.Max != 59 || b.Mean != 29.5 {
		t.Fatalf("bucket 0: %+v", b)
	}
}

// TestStoreOutOfOrderAcrossBlocks writes interleaved time ranges into
// separate blocks; queries must still return a globally sorted view.
func TestStoreOutOfOrderAcrossBlocks(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := PointKey{Station: "O29", IOA: 3001}
	rng := rand.New(rand.NewSource(9))
	var want []physical.Sample
	for i := 0; i < 100; i++ {
		s := physical.Sample{T: testBase.Add(time.Duration(rng.Intn(1000)) * time.Second), V: float64(i)}
		want = append(want, s)
		if err := st.Append(key, 13, false, s); err != nil {
			t.Fatal(err)
		}
	}
	sortSamples(want)
	got, err := st.Query(key, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].T.Equal(want[i].T) {
			t.Fatalf("sample %d out of order: %v vs %v", i, got[i].T, want[i].T)
		}
	}
}

// TestQueryHandler exercises the HTTP surface: catalog, range query,
// downsampled query, and error paths.
func TestQueryHandler(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := PointKey{Station: "O29", IOA: 3001}
	feedN(t, st, key, 120, testBase, time.Second)
	srv := httptest.NewServer(QueryHandler(st))
	defer srv.Close()

	var cat []map[string]any
	getJSON(t, srv.URL+"/query", &cat)
	if len(cat) != 1 || cat[0]["station"] != "O29" || cat[0]["samples"] != float64(120) {
		t.Fatalf("catalog: %v", cat)
	}

	var rows []map[string]any
	getJSON(t, srv.URL+"/query?station=O29&ioa=3001&from="+testBase.Format(time.RFC3339)+"&to="+testBase.Add(9*time.Second).Format(time.RFC3339), &rows)
	if len(rows) != 10 {
		t.Fatalf("range query returned %d rows, want 10", len(rows))
	}

	var buckets []map[string]any
	getJSON(t, srv.URL+"/query?station=O29&ioa=3001&step=1m", &buckets)
	if len(buckets) != 2 {
		t.Fatalf("downsample returned %d buckets, want 2", len(buckets))
	}

	resp, err := srv.Client().Get(srv.URL + "/query?station=O29&ioa=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad ioa returned %d, want 400", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestStoreMetrics checks the registry wiring end to end.
func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := Open(t.TempDir(), Options{FlushSamples: 32, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := PointKey{Station: "O29", IOA: 3001}
	feedN(t, st, key, 100, testBase, time.Second)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter(MetricAppends).Value(); v != 100 {
		t.Fatalf("appends = %d, want 100", v)
	}
	if v := reg.Counter(MetricBlocks).Value(); v < 3 {
		t.Fatalf("blocks = %d, want >= 3", v)
	}
	if v := reg.Gauge(MetricRatio).Value(); v <= 1 {
		t.Fatalf("compression ratio %v, want > 1", v)
	}
	if v := reg.Counter(MetricFsyncs).Value(); v < 1 {
		t.Fatalf("fsyncs = %d, want >= 1", v)
	}
}
