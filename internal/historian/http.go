package historian

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// QueryHandler serves the historian over HTTP, designed to mount next
// to /metrics and /profile via obs.HandlerWith:
//
//	GET /query                                   point catalog
//	GET /query?station=O29&ioa=3001              full history of a point
//	    &from=RFC3339&to=RFC3339                 time-range bound
//	    &step=30s                                downsampled buckets
//
// Responses are JSON. Timestamps accept RFC 3339 or unix nanoseconds.
func QueryHandler(st *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")

		station := q.Get("station")
		if station == "" {
			type catRow struct {
				Station string    `json:"station"`
				IOA     uint32    `json:"ioa"`
				Type    byte      `json:"type"`
				Command bool      `json:"command"`
				Samples int64     `json:"samples"`
				Blocks  int       `json:"blocks"`
				Bytes   int64     `json:"compressed_bytes"`
				First   time.Time `json:"first"`
				Last    time.Time `json:"last"`
			}
			cat := st.Catalog()
			rows := make([]catRow, 0, len(cat))
			for _, pi := range cat {
				rows = append(rows, catRow{
					Station: pi.Key.Station, IOA: pi.Key.IOA, Type: pi.Type,
					Command: pi.Command, Samples: pi.Samples, Blocks: pi.Blocks,
					Bytes: pi.Bytes, First: pi.First, Last: pi.Last,
				})
			}
			enc.Encode(rows)
			return
		}

		ioa, err := strconv.ParseUint(q.Get("ioa"), 10, 32)
		if err != nil {
			httpError(w, http.StatusBadRequest, "ioa: "+err.Error())
			return
		}
		key := PointKey{Station: station, IOA: uint32(ioa)}
		from, err := parseTime(q.Get("from"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "from: "+err.Error())
			return
		}
		to, err := parseTime(q.Get("to"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "to: "+err.Error())
			return
		}

		if stepStr := q.Get("step"); stepStr != "" {
			step, err := time.ParseDuration(stepStr)
			if err != nil {
				httpError(w, http.StatusBadRequest, "step: "+err.Error())
				return
			}
			buckets, err := st.Downsample(key, from, to, step)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			enc.Encode(buckets)
			return
		}

		samples, err := st.Query(key, from, to)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		type row struct {
			T time.Time `json:"t"`
			V float64   `json:"v"`
		}
		rows := make([]row, len(samples))
		for i, s := range samples {
			rows[i] = row{T: s.T, V: s.V}
		}
		enc.Encode(rows)
	})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// parseTime accepts RFC 3339 or unix nanoseconds; empty means
// unbounded.
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(0, n).UTC(), nil
	}
	return time.Parse(time.RFC3339, s)
}
