package historian

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"uncharted/internal/obs"

	"uncharted/internal/physical"
)

// QueryHandler serves the historian over HTTP, designed to mount next
// to /metrics and /profile via obs.HandlerWith (and per tenant by the
// control-room service):
//
//	GET /query                                   point catalog
//	GET /query?station=O29&ioa=3001              full history of a point
//	    &from=RFC3339&to=RFC3339                 time-range bound
//	    &step=30s                                downsampled buckets
//	    &format=json|text                        JSON (default) or CSV
//
// Timestamps accept RFC 3339 or unix nanoseconds.
func QueryHandler(st *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format, ok := obs.PickFormat(w, req, "json", "text")
		if !ok {
			return
		}
		q := req.URL.Query()
		var enc *json.Encoder
		if format == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc = json.NewEncoder(w)
			enc.SetIndent("", "  ")
		}

		station := q.Get("station")
		if station == "" {
			type catRow struct {
				Station string             `json:"station"`
				IOA     uint32             `json:"ioa"`
				Type    physical.PointType `json:"type"`
				Command bool               `json:"command"`
				Samples int64              `json:"samples"`
				Blocks  int                `json:"blocks"`
				Bytes   int64              `json:"compressed_bytes"`
				First   time.Time          `json:"first"`
				Last    time.Time          `json:"last"`
			}
			cat := st.Catalog()
			if format == "text" {
				fmt.Fprintln(w, "station,ioa,type,command,samples,blocks,compressed_bytes,first,last")
				for _, pi := range cat {
					fmt.Fprintf(w, "%s,%d,%d,%t,%d,%d,%d,%s,%s\n",
						pi.Key.Station, pi.Key.IOA, pi.Type, pi.Command, pi.Samples,
						pi.Blocks, pi.Bytes, pi.First.Format(time.RFC3339Nano), pi.Last.Format(time.RFC3339Nano))
				}
				return
			}
			rows := make([]catRow, 0, len(cat))
			for _, pi := range cat {
				rows = append(rows, catRow{
					Station: pi.Key.Station, IOA: pi.Key.IOA, Type: pi.Type,
					Command: pi.Command, Samples: pi.Samples, Blocks: pi.Blocks,
					Bytes: pi.Bytes, First: pi.First, Last: pi.Last,
				})
			}
			enc.Encode(rows)
			return
		}

		ioa, err := strconv.ParseUint(q.Get("ioa"), 10, 32)
		if err != nil {
			httpError(w, http.StatusBadRequest, "ioa: "+err.Error())
			return
		}
		key := PointKey{Station: station, IOA: uint32(ioa)}
		from, err := parseTime(q.Get("from"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "from: "+err.Error())
			return
		}
		to, err := parseTime(q.Get("to"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "to: "+err.Error())
			return
		}

		if stepStr := q.Get("step"); stepStr != "" {
			step, err := time.ParseDuration(stepStr)
			if err != nil {
				httpError(w, http.StatusBadRequest, "step: "+err.Error())
				return
			}
			buckets, err := st.Downsample(key, from, to, step)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			if format == "text" {
				fmt.Fprintln(w, "start,min,max,mean,count")
				for _, b := range buckets {
					fmt.Fprintf(w, "%s,%g,%g,%g,%d\n",
						b.Start.Format(time.RFC3339Nano), b.Min, b.Max, b.Mean, b.Count)
				}
				return
			}
			enc.Encode(buckets)
			return
		}

		samples, err := st.Query(key, from, to)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if format == "text" {
			fmt.Fprintln(w, "t,v")
			for _, s := range samples {
				fmt.Fprintf(w, "%s,%g\n", s.T.Format(time.RFC3339Nano), s.V)
			}
			return
		}
		type row struct {
			T time.Time `json:"t"`
			V float64   `json:"v"`
		}
		rows := make([]row, len(samples))
		for i, s := range samples {
			rows[i] = row{T: s.T, V: s.V}
		}
		enc.Encode(rows)
	})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// parseTime accepts RFC 3339 or unix nanoseconds; empty means
// unbounded.
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(0, n).UTC(), nil
	}
	return time.Parse(time.RFC3339, s)
}
