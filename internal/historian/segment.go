package historian

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// On-disk constants. All integers are little endian.
const (
	segMagic     = "UHIST001" // 8-byte segment file header
	trailerMagic = "UHIDXEND" // 8-byte sealed-segment trailer
	recMagic     = 0x55424C4B // "UBLK": one block record
	idxMagic     = 0x55494458 // "UIDX": sealed-segment index
)

// maxKeyLen bounds a stored station name; anything longer in a file is
// corruption.
const maxKeyLen = 1 << 12

// PointKey identifies one stored point: the station (ASDU address or
// resolved outstation name) and the information object address.
type PointKey struct {
	Station string
	IOA     uint32
}

func (k PointKey) String() string { return fmt.Sprintf("%s/%d", k.Station, k.IOA) }

// flagCommand marks control-direction (setpoint) series.
const flagCommand = 0x01

// flagProtoShift positions the dialect (protocol.ID) in the high
// nibble of the flags byte. IEC 104 is dialect zero, so records from
// IEC 104-only captures are byte-identical to the pre-multi-protocol
// format.
const flagProtoShift = 4

// blockMeta locates one block inside a segment — the sparse index
// entry: queries skip blocks whose [First,Last] window misses the
// requested range without touching their payload.
type blockMeta struct {
	Off         int64 // record start offset in the segment file
	Count       uint32
	First, Last int64  // unix nanoseconds
	Bytes       uint32 // compressed payload bytes
}

// pointMeta is a segment's per-point index.
type pointMeta struct {
	Key     PointKey
	Type    byte
	Flags   byte
	Blocks  []blockMeta
	Samples int64
}

// segment is one on-disk file: a header, a run of block records and —
// once sealed — an index plus trailer. The last segment of a store is
// active (append-mode); sealed segments are immutable.
type segment struct {
	path   string
	f      *os.File
	size   int64 // bytes of valid record data (excluding index/trailer)
	sealed bool
	points map[PointKey]*pointMeta
	order  []PointKey
}

func (s *segment) point(key PointKey, typ, flags byte) *pointMeta {
	pm, ok := s.points[key]
	if !ok {
		pm = &pointMeta{Key: key, Type: typ, Flags: flags}
		s.points[key] = pm
		s.order = append(s.order, key)
	}
	return pm
}

// createSegment starts a fresh active segment.
func createSegment(path string) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return &segment{
		path:   path,
		f:      f,
		size:   int64(len(segMagic)),
		points: make(map[PointKey]*pointMeta),
	}, nil
}

// appendRecord encodes one block record for key and appends it,
// updating the in-memory index. It returns the record's size in bytes.
func (s *segment) appendRecord(key PointKey, typ, flags byte, count uint32, first, last int64, payload []byte) (int, error) {
	rec := make([]byte, 0, 32+len(key.Station)+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, recMagic)
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(key.Station)))
	rec = append(rec, key.Station...)
	rec = binary.LittleEndian.AppendUint32(rec, key.IOA)
	rec = append(rec, typ, flags)
	rec = binary.LittleEndian.AppendUint32(rec, count)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(first))
	rec = binary.LittleEndian.AppendUint64(rec, uint64(last))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))

	off := s.size
	if _, err := s.f.WriteAt(rec, off); err != nil {
		return 0, err
	}
	s.size += int64(len(rec))
	pm := s.point(key, typ, flags)
	pm.Blocks = append(pm.Blocks, blockMeta{
		Off: off, Count: count, First: first, Last: last, Bytes: uint32(len(payload)),
	})
	pm.Samples += int64(count)
	return len(rec), nil
}

// readRecordPayload re-reads and verifies the record at meta.Off and
// returns its compressed payload.
func (s *segment) readRecordPayload(key PointKey, m blockMeta) ([]byte, error) {
	size := recordHeaderSize(len(key.Station)) + int(m.Bytes) + 4
	buf := make([]byte, size)
	if _, err := s.f.ReadAt(buf, m.Off); err != nil {
		return nil, fmt.Errorf("historian: reading block at %d in %s: %w", m.Off, s.path, err)
	}
	body := buf[:len(buf)-4]
	if crc := binary.LittleEndian.Uint32(buf[len(buf)-4:]); crc != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("historian: CRC mismatch at %d in %s", m.Off, s.path)
	}
	return body[len(body)-int(m.Bytes):], nil
}

// recordHeaderSize is the fixed record overhead before the payload for
// a station name of the given length.
func recordHeaderSize(stationLen int) int {
	return 4 + 2 + stationLen + 4 + 1 + 1 + 4 + 8 + 8 + 4
}

// seal writes the sparse index and trailer, making the segment
// immutable and instantly indexable on reopen.
func (s *segment) seal() error {
	if s.sealed {
		return nil
	}
	idx := make([]byte, 0, 64*len(s.order))
	idx = binary.LittleEndian.AppendUint32(idx, idxMagic)
	idx = binary.LittleEndian.AppendUint32(idx, uint32(len(s.order)))
	for _, key := range s.order {
		pm := s.points[key]
		idx = binary.LittleEndian.AppendUint16(idx, uint16(len(key.Station)))
		idx = append(idx, key.Station...)
		idx = binary.LittleEndian.AppendUint32(idx, key.IOA)
		idx = append(idx, pm.Type, pm.Flags)
		idx = binary.LittleEndian.AppendUint32(idx, uint32(len(pm.Blocks)))
		for _, b := range pm.Blocks {
			idx = binary.LittleEndian.AppendUint64(idx, uint64(b.Off))
			idx = binary.LittleEndian.AppendUint32(idx, b.Count)
			idx = binary.LittleEndian.AppendUint64(idx, uint64(b.First))
			idx = binary.LittleEndian.AppendUint64(idx, uint64(b.Last))
			idx = binary.LittleEndian.AppendUint32(idx, b.Bytes)
		}
	}
	footer := make([]byte, 0, 20)
	footer = binary.LittleEndian.AppendUint64(footer, uint64(s.size))
	footer = binary.LittleEndian.AppendUint32(footer, crc32.ChecksumIEEE(idx))
	footer = append(footer, trailerMagic...)
	if _, err := s.f.WriteAt(append(idx, footer...), s.size); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.sealed = true
	return nil
}

// openSegment loads an existing segment. Sealed segments load their
// index from the footer without touching record payloads; unsealed
// (active at crash or shutdown) segments are scanned record by record,
// and a torn tail — a partial or CRC-failing last record — is
// truncated away. tornBytes reports how much was discarded.
func openSegment(path string) (seg *segment, tornBytes int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	fileSize := st.Size()
	head := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, head); err != nil || string(head) != segMagic {
		f.Close()
		return nil, 0, fmt.Errorf("historian: %s is not a historian segment", path)
	}
	s := &segment{path: path, f: f, points: make(map[PointKey]*pointMeta)}

	if s.loadIndex(fileSize) == nil {
		s.sealed = true
		return s, 0, nil
	}
	// No (or invalid) index: scan records, truncate any torn tail.
	valid, err := s.scan(fileSize)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	s.size = valid
	if valid < fileSize {
		tornBytes = fileSize - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	return s, tornBytes, nil
}

// loadIndex tries to parse a sealed segment's footer and index.
func (s *segment) loadIndex(fileSize int64) error {
	const footerLen = 8 + 4 + 8
	if fileSize < int64(len(segMagic))+footerLen {
		return errors.New("no footer")
	}
	footer := make([]byte, footerLen)
	if _, err := s.f.ReadAt(footer, fileSize-footerLen); err != nil {
		return err
	}
	if string(footer[12:]) != trailerMagic {
		return errors.New("no trailer magic")
	}
	idxOff := int64(binary.LittleEndian.Uint64(footer[:8]))
	wantCRC := binary.LittleEndian.Uint32(footer[8:12])
	if idxOff < int64(len(segMagic)) || idxOff > fileSize-footerLen {
		return errors.New("index offset out of range")
	}
	idx := make([]byte, fileSize-footerLen-idxOff)
	if _, err := s.f.ReadAt(idx, idxOff); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(idx) != wantCRC {
		return errors.New("index CRC mismatch")
	}
	p := 0
	get := func(n int) ([]byte, bool) {
		if p+n > len(idx) {
			return nil, false
		}
		b := idx[p : p+n]
		p += n
		return b, true
	}
	b, ok := get(8)
	if !ok || binary.LittleEndian.Uint32(b) != idxMagic {
		return errors.New("bad index magic")
	}
	nPoints := binary.LittleEndian.Uint32(b[4:])
	for i := uint32(0); i < nPoints; i++ {
		b, ok := get(2)
		if !ok {
			return errors.New("index truncated")
		}
		keyLen := int(binary.LittleEndian.Uint16(b))
		if keyLen > maxKeyLen {
			return errors.New("index key too long")
		}
		kb, ok := get(keyLen)
		if !ok {
			return errors.New("index truncated")
		}
		hb, ok := get(4 + 1 + 1 + 4)
		if !ok {
			return errors.New("index truncated")
		}
		key := PointKey{Station: string(kb), IOA: binary.LittleEndian.Uint32(hb)}
		pm := s.point(key, hb[4], hb[5])
		nBlocks := binary.LittleEndian.Uint32(hb[6:])
		for j := uint32(0); j < nBlocks; j++ {
			bb, ok := get(8 + 4 + 8 + 8 + 4)
			if !ok {
				return errors.New("index truncated")
			}
			bm := blockMeta{
				Off:   int64(binary.LittleEndian.Uint64(bb)),
				Count: binary.LittleEndian.Uint32(bb[8:]),
				First: int64(binary.LittleEndian.Uint64(bb[12:])),
				Last:  int64(binary.LittleEndian.Uint64(bb[20:])),
				Bytes: binary.LittleEndian.Uint32(bb[28:]),
			}
			pm.Blocks = append(pm.Blocks, bm)
			pm.Samples += int64(bm.Count)
		}
	}
	s.size = idxOff
	return nil
}

// scan walks the record run from the top of the file, rebuilding the
// in-memory index. It returns the offset of the first invalid byte —
// everything after it is a torn tail.
func (s *segment) scan(fileSize int64) (int64, error) {
	off := int64(len(segMagic))
	var hdr [4 + 2]byte
	for off < fileSize {
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			return off, nil // short header: torn
		}
		if binary.LittleEndian.Uint32(hdr[:4]) != recMagic {
			return off, nil
		}
		keyLen := int(binary.LittleEndian.Uint16(hdr[4:]))
		if keyLen > maxKeyLen {
			return off, nil
		}
		rest := make([]byte, keyLen+4+1+1+4+8+8+4)
		if _, err := s.f.ReadAt(rest, off+int64(len(hdr))); err != nil {
			return off, nil
		}
		payloadLen := binary.LittleEndian.Uint32(rest[len(rest)-4:])
		total := int64(recordHeaderSize(keyLen)) + int64(payloadLen) + 4
		if off+total > fileSize {
			return off, nil
		}
		rec := make([]byte, total)
		if _, err := s.f.ReadAt(rec, off); err != nil {
			return off, nil
		}
		body := rec[:len(rec)-4]
		if binary.LittleEndian.Uint32(rec[len(rec)-4:]) != crc32.ChecksumIEEE(body) {
			return off, nil
		}
		key := PointKey{Station: string(rest[:keyLen]), IOA: binary.LittleEndian.Uint32(rest[keyLen:])}
		typ, flags := rest[keyLen+4], rest[keyLen+5]
		count := binary.LittleEndian.Uint32(rest[keyLen+6:])
		first := int64(binary.LittleEndian.Uint64(rest[keyLen+10:]))
		last := int64(binary.LittleEndian.Uint64(rest[keyLen+18:]))
		pm := s.point(key, typ, flags)
		pm.Blocks = append(pm.Blocks, blockMeta{
			Off: off, Count: count, First: first, Last: last, Bytes: payloadLen,
		})
		pm.Samples += int64(count)
		off += total
	}
	return off, nil
}

// lastTS returns the newest sample timestamp in the segment (unix
// nanoseconds), for retention decisions.
func (s *segment) lastTS() int64 {
	var last int64 = math64Min
	for _, pm := range s.points {
		for _, b := range pm.Blocks {
			if b.Last > last {
				last = b.Last
			}
		}
	}
	return last
}

const math64Min = -1 << 63

func (s *segment) close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
