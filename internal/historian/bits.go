package historian

import "errors"

// errShortBits reports a bit-level read past the end of a block
// payload — a torn or corrupt block.
var errShortBits = errors.New("historian: bit stream exhausted")

// bitWriter appends bits MSB-first to a byte slice.
type bitWriter struct {
	b     []byte
	avail uint // free bits in the last byte (0 when b is byte-aligned)
}

// writeBit appends one bit (any non-zero v writes 1).
func (w *bitWriter) writeBit(v uint64) {
	if w.avail == 0 {
		w.b = append(w.b, 0)
		w.avail = 8
	}
	if v != 0 {
		w.b[len(w.b)-1] |= 1 << (w.avail - 1)
	}
	w.avail--
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.avail == 0 {
			w.b = append(w.b, 0)
			w.avail = 8
		}
		take := w.avail
		if take > n {
			take = n
		}
		chunk := (v >> (n - take)) & ((1 << take) - 1)
		w.b[len(w.b)-1] |= byte(chunk << (w.avail - take))
		w.avail -= take
		n -= take
	}
}

// bytes returns the accumulated bytes (trailing free bits are zero).
func (w *bitWriter) bytes() []byte { return w.b }

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	b    []byte
	pos  int  // next byte index
	left uint // unread bits in b[pos-1] (0 = advance)
}

// readBit returns the next bit.
func (r *bitReader) readBit() (uint64, error) {
	if r.left == 0 {
		if r.pos >= len(r.b) {
			return 0, errShortBits
		}
		r.pos++
		r.left = 8
	}
	r.left--
	return uint64(r.b[r.pos-1]>>r.left) & 1, nil
}

// readBits returns the next n bits as the low bits of a uint64.
func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.left == 0 {
			if r.pos >= len(r.b) {
				return 0, errShortBits
			}
			r.pos++
			r.left = 8
		}
		take := r.left
		if take > n {
			take = n
		}
		chunk := uint64(r.b[r.pos-1]>>(r.left-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.left -= take
		n -= take
	}
	return v, nil
}
