package historian

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/physical"
)

// Options tunes a Store. The zero value is usable: Open fills in
// defaults.
type Options struct {
	// MaxSegmentBytes seals the active segment once its record data
	// reaches this size and starts a new one. Default 8 MiB.
	MaxSegmentBytes int64
	// FlushSamples flushes a point's buffer to a compressed block once
	// it holds this many samples. Default 512. Larger blocks compress
	// better; smaller ones bound the data at risk in a crash.
	FlushSamples int
	// FsyncEveryBytes batches fsync: the active segment is synced after
	// this many bytes of new records. Default 1 MiB. Zero syncs only on
	// Sync/Close/seal.
	FsyncEveryBytes int64
	// Retention drops sealed segments whose newest sample is older than
	// this at Compact time. Zero keeps everything — the paper's §7 case
	// for retaining years of measurements.
	Retention time.Duration
	// DownsampleAfter rewrites sealed segments older than this with
	// DownsampleStep-bucketed means instead of dropping them — the
	// middle ground between full fidelity and deletion.
	DownsampleAfter time.Duration
	// DownsampleStep is the bucket width for age-based downsampling.
	// Default 1 minute.
	DownsampleStep time.Duration
	// Registry, when set, books uncharted_historian_* metrics.
	Registry *obs.Registry
}

func (o *Options) setDefaults() {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.FlushSamples <= 0 {
		o.FlushSamples = 512
	}
	if o.FsyncEveryBytes < 0 {
		o.FsyncEveryBytes = 0
	} else if o.FsyncEveryBytes == 0 {
		o.FsyncEveryBytes = 1 << 20
	}
	if o.DownsampleStep <= 0 {
		o.DownsampleStep = time.Minute
	}
}

// pointBuffer is the in-memory tail of one point: samples appended
// since its last flushed block.
type pointBuffer struct {
	typ, flags byte
	samples    []physical.Sample
}

// Store is the embedded historian: buffered writes, compressed
// append-only segments, and queries that merge disk with the
// in-memory tail. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	sealed   []*segment
	active   *segment
	nextSeq  int
	buffers  map[PointKey]*pointBuffer
	order    []PointKey
	unsynced int64 // record bytes written since the last fsync
	closed   bool

	m *storeMetrics
}

// OpenNamespace opens (or creates) a historian under root/ns. The
// namespace must be a single clean path element — tenant names map
// onto isolated per-tenant stores under one configured root without
// any chance of escaping it.
func OpenNamespace(root, ns string, opts Options) (*Store, error) {
	if ns == "" || ns != filepath.Base(ns) || ns == "." || ns == ".." ||
		strings.ContainsAny(ns, `/\`) {
		return nil, fmt.Errorf("historian: invalid namespace %q", ns)
	}
	return Open(filepath.Join(root, ns), opts)
}

// Open opens (or creates) a historian under dir. An unsealed last
// segment — the active one at crash or shutdown — is recovered: its
// records are re-indexed by scanning and a torn tail, if any, is
// truncated, losing at most the last partially written block.
func Open(dir string, opts Options) (*Store, error) {
	opts.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{
		dir:     dir,
		opts:    opts,
		buffers: make(map[PointKey]*pointBuffer),
		m:       newStoreMetrics(opts.Registry),
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		seg, torn, err := openSegment(filepath.Join(dir, name))
		if err != nil {
			st.closeAll()
			return nil, err
		}
		st.m.noteTorn(torn)
		seq := segmentSeq(name)
		if seq >= st.nextSeq {
			st.nextSeq = seq + 1
		}
		if i == len(names)-1 && !seg.sealed {
			st.active = seg
		} else {
			// A sealed-looking unsealed segment in the middle means a
			// crash raced rotation; seal it now so it is indexable.
			if !seg.sealed {
				if err := seg.seal(); err != nil {
					st.closeAll()
					return nil, err
				}
			}
			st.sealed = append(st.sealed, seg)
		}
	}
	if st.active == nil {
		if err := st.rotateLocked(); err != nil {
			st.closeAll()
			return nil, err
		}
	}
	st.m.noteSegments(len(st.sealed) + 1)
	return st, nil
}

// segmentNames lists segment files in sequence order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".useg") {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool { return segmentSeq(names[i]) < segmentSeq(names[j]) })
	return names, nil
}

func segmentSeq(name string) int {
	var seq int
	fmt.Sscanf(name, "seg-%d.useg", &seq)
	return seq
}

func segmentName(seq int) string { return fmt.Sprintf("seg-%08d.useg", seq) }

// rotateLocked seals the current active segment (if any) and starts a
// fresh one.
func (st *Store) rotateLocked() error {
	if st.active != nil {
		if err := st.active.seal(); err != nil {
			return err
		}
		st.sealed = append(st.sealed, st.active)
		st.active = nil
		st.unsynced = 0
	}
	seg, err := createSegment(filepath.Join(st.dir, segmentName(st.nextSeq)))
	if err != nil {
		return err
	}
	st.nextSeq++
	st.active = seg
	st.m.noteSegments(len(st.sealed) + 1)
	return nil
}

// Append buffers one sample for a point. typ carries the dialect and
// its local type code (for IEC 104, numerically the TypeID); command
// flags control-direction (setpoint) series. The buffer is flushed to
// a compressed block at Options.FlushSamples.
func (st *Store) Append(key PointKey, typ physical.PointType, command bool, s physical.Sample) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return os.ErrClosed
	}
	buf, ok := st.buffers[key]
	if !ok {
		flags := byte(typ.Proto()) << flagProtoShift
		if command {
			flags |= flagCommand
		}
		buf = &pointBuffer{typ: typ.Code(), flags: flags}
		st.buffers[key] = buf
		st.order = append(st.order, key)
	}
	buf.samples = append(buf.samples, s)
	st.m.noteAppend()
	if len(buf.samples) >= st.opts.FlushSamples {
		return st.flushPointLocked(key, buf)
	}
	return nil
}

// flushPointLocked encodes a point's buffer into one block record and
// appends it to the active segment, rotating and fsyncing as
// configured.
func (st *Store) flushPointLocked(key PointKey, buf *pointBuffer) error {
	if len(buf.samples) == 0 {
		return nil
	}
	sortSamples(buf.samples)
	payload := EncodeBlock(buf.samples)
	first := buf.samples[0].T.UnixNano()
	last := buf.samples[len(buf.samples)-1].T.UnixNano()
	n, err := st.active.appendRecord(key, buf.typ, buf.flags, uint32(len(buf.samples)), first, last, payload)
	if err != nil {
		return err
	}
	st.m.noteBlock(len(buf.samples), len(payload), n)
	buf.samples = buf.samples[:0]
	st.unsynced += int64(n)
	if st.active.size >= st.opts.MaxSegmentBytes {
		return st.rotateLocked()
	}
	if st.opts.FsyncEveryBytes > 0 && st.unsynced >= st.opts.FsyncEveryBytes {
		return st.syncActiveLocked()
	}
	return nil
}

func (st *Store) syncActiveLocked() error {
	if st.unsynced == 0 {
		return nil
	}
	if err := st.active.f.Sync(); err != nil {
		return err
	}
	st.unsynced = 0
	st.m.noteFsync()
	return nil
}

// Flush writes every buffered sample to disk as blocks (without
// forcing an fsync).
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.flushAllLocked()
}

func (st *Store) flushAllLocked() error {
	for _, key := range st.order {
		if buf := st.buffers[key]; len(buf.samples) > 0 {
			if err := st.flushPointLocked(key, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync flushes all buffers and fsyncs the active segment — the
// snapshot-stage durability point.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.flushAllLocked(); err != nil {
		return err
	}
	return st.syncActiveLocked()
}

// Close flushes, fsyncs, and closes all segment files. The active
// segment is left unsealed so the next Open resumes appending to it
// with zero torn bytes.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	if err := st.flushAllLocked(); err != nil {
		return err
	}
	if err := st.syncActiveLocked(); err != nil {
		return err
	}
	st.closed = true
	return st.closeAll()
}

func (st *Store) closeAll() error {
	var first error
	for _, seg := range st.sealed {
		if err := seg.close(); err != nil && first == nil {
			first = err
		}
	}
	if st.active != nil {
		if err := st.active.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Rotate flushes all buffers, seals the active segment, and starts a
// fresh one. Retention works at segment granularity, so rotating
// before Compact gives it a clean boundary to age out.
func (st *Store) Rotate() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return os.ErrClosed
	}
	if err := st.flushAllLocked(); err != nil {
		return err
	}
	return st.rotateLocked()
}

// Compact applies retention at the given reference time: sealed
// segments whose newest sample is older than Retention are deleted;
// otherwise, segments older than DownsampleAfter are rewritten with
// bucketed means (idempotent — an already-downsampled segment is left
// alone). The active segment is never touched.
func (st *Store) Compact(now time.Time) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return os.ErrClosed
	}
	kept := st.sealed[:0]
	for _, seg := range st.sealed {
		last := time.Unix(0, seg.lastTS())
		switch {
		case st.opts.Retention > 0 && now.Sub(last) > st.opts.Retention:
			if err := seg.close(); err != nil {
				return err
			}
			if err := os.Remove(seg.path); err != nil {
				return err
			}
			st.m.noteCompaction("drop")
		case st.opts.DownsampleAfter > 0 && now.Sub(last) > st.opts.DownsampleAfter && !segDownsampled(seg):
			ds, err := st.downsampleSegment(seg)
			if err != nil {
				return err
			}
			kept = append(kept, ds)
			st.m.noteCompaction("downsample")
		default:
			kept = append(kept, seg)
		}
	}
	st.sealed = kept
	st.m.noteSegments(len(st.sealed) + 1)
	return nil
}

// flagDownsampled marks records produced by age-based downsampling,
// making Compact idempotent.
const flagDownsampled = 0x02

func segDownsampled(s *segment) bool {
	if len(s.points) == 0 {
		return false
	}
	for _, pm := range s.points {
		if pm.Flags&flagDownsampled == 0 {
			return false
		}
	}
	return true
}

// downsampleSegment rewrites one sealed segment with mean-per-bucket
// samples at Options.DownsampleStep, via temp file + rename so a crash
// mid-compaction leaves the original intact.
func (st *Store) downsampleSegment(seg *segment) (*segment, error) {
	tmp := seg.path + ".tmp"
	out, err := createSegment(tmp)
	if err != nil {
		return nil, err
	}
	step := st.opts.DownsampleStep
	for _, key := range seg.order {
		pm := seg.points[key]
		var all []physical.Sample
		for _, bm := range pm.Blocks {
			payload, err := seg.readRecordPayload(key, bm)
			if err != nil {
				out.close()
				os.Remove(tmp)
				return nil, err
			}
			samples, err := DecodeBlock(payload)
			if err != nil {
				out.close()
				os.Remove(tmp)
				return nil, err
			}
			all = append(all, samples...)
		}
		sortSamples(all)
		ds := downsampleMean(all, step)
		if len(ds) == 0 {
			continue
		}
		payload := EncodeBlock(ds)
		_, err := out.appendRecord(key, pm.Type, pm.Flags|flagDownsampled,
			uint32(len(ds)), ds[0].T.UnixNano(), ds[len(ds)-1].T.UnixNano(), payload)
		if err != nil {
			out.close()
			os.Remove(tmp)
			return nil, err
		}
	}
	if err := out.seal(); err != nil {
		out.close()
		os.Remove(tmp)
		return nil, err
	}
	if err := out.close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := seg.close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, seg.path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	reopened, _, err := openSegment(seg.path)
	return reopened, err
}

// downsampleMean reduces time-sorted samples to one mean per step
// bucket, stamped at the bucket start.
func downsampleMean(s []physical.Sample, step time.Duration) []physical.Sample {
	var out []physical.Sample
	i := 0
	for i < len(s) {
		start := s[i].T.Truncate(step)
		end := start.Add(step)
		var sum float64
		n := 0
		for i < len(s) && s[i].T.Before(end) {
			sum += s[i].V
			n++
			i++
		}
		out = append(out, physical.Sample{T: start, V: sum / float64(n)})
	}
	return out
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }
