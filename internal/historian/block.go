// Package historian is the pipeline's embedded measurement store: an
// append-only, compressed on-disk time-series database for decoded
// IEC 104 measurements, the layer that makes §7-style deep packet
// inspection possible over long horizons. The paper's event
// signatures (generator synchronisation, unmet load) and stale-data
// pathologies only surface when two *years* of physical values stay
// queryable; this package retains every extracted sample across
// restarts, in roughly 1/16th of the raw footprint.
//
// Layout: samples are buffered per point and flushed as compressed
// blocks — Gorilla-style delta-of-delta timestamps plus XOR float
// compression, CRC-checked — into append-only segment files. Sealed
// segments carry an in-file sparse index keyed by (station, IOA,
// type); the active segment is recovered on open by scanning and
// truncating any torn tail block. Queries merge on-disk blocks with
// the in-memory tail, so a point's history is always complete.
package historian

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"

	"uncharted/internal/physical"
)

// Codec errors.
var (
	// ErrCorrupt reports a block payload that cannot be decoded — a
	// torn write or bit rot (CRC failures surface at the segment
	// layer; this is the bit-level backstop).
	ErrCorrupt = errors.New("historian: corrupt block")
)

// maxBlockSamples bounds a single block's sample count; it protects
// the decoder from allocating on a corrupt count field. Writers flush
// far below this.
const maxBlockSamples = 1 << 20

// EncodeBlock compresses samples into a block payload. Samples are
// encoded in the given order; the store sorts each buffer by time
// before flushing, but the codec itself tolerates any order (the
// delta-of-delta stream carries signed values), so out-of-order
// timestamps round-trip bit-exactly too. Values round-trip bit-exactly
// including NaN and ±Inf: the XOR scheme operates on raw IEEE-754
// bits.
//
// Payload layout: uvarint sample count, uvarint timestamp scale, then
// 8 bytes first timestamp (unix nanoseconds, little endian) and
// 8 bytes first value bits, then a bit stream with, per subsequent
// sample:
//
//	timestamps — delta-of-delta in scale units, bucketed:
//	  '0'                 dod == 0
//	  '10' + 16 bits      dod in [-2^15, 2^15)
//	  '110' + 32 bits     dod in [-2^31, 2^31)
//	  '111' + 64 bits     anything else
//	values — XOR with the previous value's bits:
//	  '0'                 xor == 0
//	  '10' + meaningful   reuse the previous leading/trailing window
//	  '11' + 6+6 + bits   new window: leading count, significant-1, bits
//
// The timestamp scale is the GCD of all deltas in the block: CP56
// time tags are millisecond-quantized and capture stamps microsecond-
// quantized, so encoding deltas in their natural unit instead of raw
// nanoseconds keeps delta-of-deltas in the 1-bit or 16-bit buckets.
// Division by the exact GCD is lossless.
func EncodeBlock(samples []physical.Sample) []byte {
	var head [2*binary.MaxVarintLen64 + 16]byte
	n := binary.PutUvarint(head[:], uint64(len(samples)))
	if len(samples) == 0 {
		return head[:n]
	}
	first := samples[0]
	scale := int64(0)
	prev := first.T.UnixNano()
	for _, s := range samples[1:] {
		scale = gcd64(scale, s.T.UnixNano()-prev)
		prev = s.T.UnixNano()
	}
	if scale <= 0 {
		scale = 1
	}
	n += binary.PutUvarint(head[n:], uint64(scale))
	binary.LittleEndian.PutUint64(head[n:], uint64(first.T.UnixNano()))
	binary.LittleEndian.PutUint64(head[n+8:], math.Float64bits(first.V))
	w := &bitWriter{b: append([]byte(nil), head[:n+16]...)}

	prevTS := first.T.UnixNano()
	var prevDelta int64
	prevBits := math.Float64bits(first.V)
	leading, trailing := uint(255), uint(0) // 255 = no window yet

	for _, s := range samples[1:] {
		ts := s.T.UnixNano()
		delta := (ts - prevTS) / scale
		dod := delta - prevDelta
		prevTS, prevDelta = ts, delta
		switch {
		case dod == 0:
			w.writeBit(0)
		case dod >= math.MinInt16 && dod <= math.MaxInt16:
			w.writeBits(0b10, 2)
			w.writeBits(uint64(dod)&0xFFFF, 16)
		case dod >= math.MinInt32 && dod <= math.MaxInt32:
			w.writeBits(0b110, 3)
			w.writeBits(uint64(dod)&0xFFFFFFFF, 32)
		default:
			w.writeBits(0b111, 3)
			w.writeBits(uint64(dod), 64)
		}

		vb := math.Float64bits(s.V)
		xor := vb ^ prevBits
		prevBits = vb
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		lead := uint(bits.LeadingZeros64(xor))
		trail := uint(bits.TrailingZeros64(xor))
		if lead > 31 { // cap so the 5/6-bit window fields always fit
			lead = 31
		}
		if leading != 255 && lead >= leading && trail >= trailing {
			w.writeBits(0b10, 2)
			w.writeBits(xor>>trailing, 64-leading-trailing)
			continue
		}
		leading, trailing = lead, trail
		sig := 64 - lead - trail
		w.writeBits(0b11, 2)
		w.writeBits(uint64(lead), 6)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>trail, sig)
	}
	return w.bytes()
}

// DecodeBlock reverses EncodeBlock. It is total: any input either
// decodes or returns ErrCorrupt — never a panic — so it doubles as
// the fuzz target.
func DecodeBlock(payload []byte) ([]physical.Sample, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad count varint", ErrCorrupt)
	}
	if count == 0 {
		return nil, nil
	}
	if count > maxBlockSamples || count > uint64(len(payload))*8 {
		return nil, fmt.Errorf("%w: implausible count %d for %d payload bytes", ErrCorrupt, count, len(payload))
	}
	uscale, m := binary.Uvarint(payload[n:])
	if m <= 0 || uscale == 0 || uscale > math.MaxInt64 {
		return nil, fmt.Errorf("%w: bad timestamp scale", ErrCorrupt)
	}
	scale := int64(uscale)
	n += m
	if len(payload) < n+16 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	ts := int64(binary.LittleEndian.Uint64(payload[n:]))
	vb := binary.LittleEndian.Uint64(payload[n+8:])
	out := make([]physical.Sample, 0, count)
	out = append(out, physical.Sample{T: time.Unix(0, ts).UTC(), V: math.Float64frombits(vb)})

	r := &bitReader{b: payload[n+16:]}
	var delta int64
	leading, trailing := uint(255), uint(0)
	for uint64(len(out)) < count {
		// Timestamp.
		b, err := r.readBit()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		var dod int64
		if b == 1 {
			b2, err := r.readBit()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			switch {
			case b2 == 0:
				u, err := r.readBits(16)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				dod = int64(int16(u))
			default:
				b3, err := r.readBit()
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				width := uint(64)
				if b3 == 0 {
					width = 32
				}
				u, err := r.readBits(width)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				if width == 32 {
					dod = int64(int32(u))
				} else {
					dod = int64(u)
				}
			}
		}
		delta += dod
		ts += delta * scale

		// Value.
		b, err = r.readBit()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if b == 1 {
			b2, err := r.readBit()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if b2 == 1 {
				lead, err := r.readBits(6)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				sigm1, err := r.readBits(6)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				sig := uint(sigm1) + 1
				if uint(lead)+sig > 64 {
					return nil, fmt.Errorf("%w: window %d+%d exceeds 64 bits", ErrCorrupt, lead, sig)
				}
				leading = uint(lead)
				trailing = 64 - leading - sig
			} else if leading == 255 {
				return nil, fmt.Errorf("%w: window reuse before first window", ErrCorrupt)
			}
			sig := 64 - leading - trailing
			u, err := r.readBits(sig)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			vb ^= u << trailing
		}
		out = append(out, physical.Sample{T: time.Unix(0, ts).UTC(), V: math.Float64frombits(vb)})
	}
	return out, nil
}

// sortSamples orders samples by time, stably, so append order breaks
// ties exactly like physical.Store.Feed's insertion rule.
func sortSamples(s []physical.Sample) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].T.Before(s[j].T) })
}

// gcd64 is the non-negative GCD; gcd64(0, x) == |x|.
func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
