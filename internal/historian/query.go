package historian

import (
	"math"
	"sort"
	"time"

	"uncharted/internal/physical"
	"uncharted/internal/protocol"
)

// Samples is a time-ordered query result. It implements physical.View,
// so the event-signature detectors (DetectSync, DetectUnmetLoad,
// CorrelateAGC) run over replayed history exactly as over live state.
type Samples []physical.Sample

// Len implements physical.View.
func (s Samples) Len() int { return len(s) }

// Sample implements physical.View.
func (s Samples) Sample(i int) physical.Sample { return s[i] }

// Query returns a point's samples with from <= T <= to, merging
// on-disk blocks with the in-memory tail. Zero from/to mean unbounded
// on that side. Results are stably time-sorted, so equal-timestamp
// samples keep append order — the same tie-break physical.Store.Feed
// applies in memory.
func (st *Store) Query(key PointKey, from, to time.Time) (Samples, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fromN, toN := rangeNanos(from, to)

	var out []physical.Sample
	segs := append(append([]*segment(nil), st.sealed...), st.active)
	for _, seg := range segs {
		pm, ok := seg.points[key]
		if !ok {
			continue
		}
		for _, bm := range pm.Blocks {
			if bm.Last < fromN || bm.First > toN {
				continue // sparse index: skip non-overlapping blocks
			}
			payload, err := seg.readRecordPayload(key, bm)
			if err != nil {
				return nil, err
			}
			samples, err := DecodeBlock(payload)
			if err != nil {
				return nil, err
			}
			for _, s := range samples {
				if n := s.T.UnixNano(); n >= fromN && n <= toN {
					out = append(out, s)
				}
			}
		}
	}
	if buf, ok := st.buffers[key]; ok {
		for _, s := range buf.samples {
			if n := s.T.UnixNano(); n >= fromN && n <= toN {
				out = append(out, s)
			}
		}
	}
	sortSamples(out)
	return out, nil
}

func rangeNanos(from, to time.Time) (int64, int64) {
	fromN := int64(math.MinInt64)
	if !from.IsZero() {
		fromN = from.UnixNano()
	}
	toN := int64(math.MaxInt64)
	if !to.IsZero() {
		toN = to.UnixNano()
	}
	return fromN, toN
}

// Bucket is one downsampled aggregate of a point over [Start,
// Start+step).
type Bucket struct {
	Start time.Time
	Min   float64
	Max   float64
	Mean  float64
	Count int
}

// Downsample queries a range and aggregates it into step-wide buckets
// (min/max/mean/count), the shape dashboards plot over long horizons.
func (st *Store) Downsample(key PointKey, from, to time.Time, step time.Duration) ([]Bucket, error) {
	if step <= 0 {
		step = time.Minute
	}
	samples, err := st.Query(key, from, to)
	if err != nil {
		return nil, err
	}
	var out []Bucket
	i := 0
	for i < len(samples) {
		start := samples[i].T.Truncate(step)
		end := start.Add(step)
		b := Bucket{Start: start, Min: math.Inf(1), Max: math.Inf(-1)}
		var sum float64
		for i < len(samples) && samples[i].T.Before(end) {
			v := samples[i].V
			if v < b.Min {
				b.Min = v
			}
			if v > b.Max {
				b.Max = v
			}
			sum += v
			b.Count++
			i++
		}
		b.Mean = sum / float64(b.Count)
		out = append(out, b)
	}
	return out, nil
}

// PointInfo describes one stored point for the catalog.
type PointInfo struct {
	Key     PointKey
	Type    physical.PointType
	Command bool
	Samples int64 // on disk + buffered
	Blocks  int
	Bytes   int64 // compressed payload bytes on disk
	First   time.Time
	Last    time.Time
}

// Catalog lists every stored point with its sample count, compressed
// footprint, and time extent.
func (st *Store) Catalog() []PointInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	infos := make(map[PointKey]*PointInfo)
	var order []PointKey
	get := func(key PointKey, typ, flags byte) *PointInfo {
		pi, ok := infos[key]
		if !ok {
			pi = &PointInfo{Key: key, Type: pointType(typ, flags), Command: flags&flagCommand != 0}
			infos[key] = pi
			order = append(order, key)
		}
		return pi
	}
	segs := append(append([]*segment(nil), st.sealed...), st.active)
	for _, seg := range segs {
		for _, key := range seg.order {
			pm := seg.points[key]
			pi := get(key, pm.Type, pm.Flags)
			pi.Samples += pm.Samples
			pi.Blocks += len(pm.Blocks)
			for _, bm := range pm.Blocks {
				pi.Bytes += int64(bm.Bytes)
				extend(pi, time.Unix(0, bm.First).UTC(), time.Unix(0, bm.Last).UTC())
			}
		}
	}
	for _, key := range st.order {
		buf := st.buffers[key]
		if len(buf.samples) == 0 {
			continue
		}
		pi := get(key, buf.typ, buf.flags)
		pi.Samples += int64(len(buf.samples))
		for _, s := range buf.samples {
			extend(pi, s.T, s.T)
		}
	}
	out := make([]PointInfo, 0, len(order))
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Station != b.Station {
			return a.Station < b.Station
		}
		return a.IOA < b.IOA
	})
	for _, key := range order {
		out = append(out, *infos[key])
	}
	return out
}

func extend(pi *PointInfo, first, last time.Time) {
	if pi.First.IsZero() || first.Before(pi.First) {
		pi.First = first
	}
	if last.After(pi.Last) {
		pi.Last = last
	}
}

// SeriesFor materialises a point's full history as a *physical.Series
// — the bridge from durable storage back to the in-memory analysis
// API.
func (st *Store) SeriesFor(key PointKey, from, to time.Time) (*physical.Series, error) {
	st.mu.Lock()
	typ, flags := byte(0), byte(0)
	if buf, ok := st.buffers[key]; ok {
		typ, flags = buf.typ, buf.flags
	} else {
		segs := append(append([]*segment(nil), st.sealed...), st.active)
		for _, seg := range segs {
			if pm, ok := seg.points[key]; ok {
				typ, flags = pm.Type, pm.Flags
				break
			}
		}
	}
	st.mu.Unlock()
	command := flags&flagCommand != 0
	samples, err := st.Query(key, from, to)
	if err != nil {
		return nil, err
	}
	return &physical.Series{
		Key:     physical.SeriesKey{Station: key.Station, IOA: key.IOA},
		Type:    pointType(typ, flags),
		Command: command,
		Samples: samples,
	}, nil
}

// pointType recomposes a record's full point type from its stored type
// byte and the dialect nibble of its flags.
func pointType(typ, flags byte) physical.PointType {
	return physical.TypeOf(protocol.ID(flags>>flagProtoShift), typ)
}
