package historian

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"uncharted/internal/physical"
)

var updateGolden = flag.Bool("update", false, "rewrite golden block files")

// goldenCases are deterministic sample sets covering the codec's
// branches: regular cadence (dod==0 fast path), jittered cadence
// (16/32-bit dod buckets), large gaps (64-bit dod), constant values,
// slowly drifting floats (window reuse), NaN/Inf, and out-of-order
// timestamps.
func goldenCases() map[string][]physical.Sample {
	base := time.Date(2019, 6, 1, 12, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(42))
	cases := map[string][]physical.Sample{}

	// regular models deadband-reported telemetry: fixed 4 s cadence,
	// float32-precision values quantized to 0.01 so consecutive reports
	// often repeat — the shape IEC 104 M_ME_NC points actually have.
	regular := make([]physical.Sample, 200)
	for i := range regular {
		v := float64(float32(math.Round((60+0.02*math.Sin(float64(i)/20))*100) / 100))
		regular[i] = physical.Sample{T: base.Add(time.Duration(i) * 4 * time.Second), V: v}
	}
	cases["regular"] = regular

	jitter := make([]physical.Sample, 200)
	t := base
	for i := range jitter {
		t = t.Add(4*time.Second + time.Duration(rng.Intn(2000)-1000)*time.Millisecond)
		jitter[i] = physical.Sample{T: t, V: 345.0 + rng.Float64()}
	}
	cases["jitter"] = jitter

	gaps := []physical.Sample{
		{T: base, V: 1},
		{T: base.Add(time.Second), V: 1},
		{T: base.Add(90 * 24 * time.Hour), V: 2}, // ~2^52 ns dod: 64-bit bucket
		{T: base.Add(90*24*time.Hour + time.Second), V: 2},
		{T: base.Add(180 * 24 * time.Hour), V: 3},
	}
	cases["gaps"] = gaps

	constant := make([]physical.Sample, 100)
	for i := range constant {
		constant[i] = physical.Sample{T: base.Add(time.Duration(i) * time.Second), V: 118.5}
	}
	cases["constant"] = constant

	special := []physical.Sample{
		{T: base, V: 0},
		{T: base.Add(1 * time.Second), V: math.NaN()},
		{T: base.Add(2 * time.Second), V: math.Inf(1)},
		{T: base.Add(3 * time.Second), V: math.Inf(-1)},
		{T: base.Add(4 * time.Second), V: math.Copysign(0, -1)},
		{T: base.Add(5 * time.Second), V: math.SmallestNonzeroFloat64},
		{T: base.Add(6 * time.Second), V: math.MaxFloat64},
	}
	cases["special"] = special

	outOfOrder := []physical.Sample{
		{T: base.Add(10 * time.Second), V: 5},
		{T: base.Add(2 * time.Second), V: 6},
		{T: base.Add(30 * time.Second), V: 7},
		{T: base.Add(2 * time.Second), V: 8}, // duplicate timestamp
		{T: base, V: 9},
	}
	cases["out-of-order"] = outOfOrder

	return cases
}

func sampleEqual(a, b physical.Sample) bool {
	return a.T.Equal(b.T) && math.Float64bits(a.V) == math.Float64bits(b.V)
}

func assertSamplesEqual(t *testing.T, got, want []physical.Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if !sampleEqual(got[i], want[i]) {
			t.Fatalf("sample %d: got %v/%x, want %v/%x",
				i, got[i].T, math.Float64bits(got[i].V), want[i].T, math.Float64bits(want[i].V))
		}
	}
}

// TestBlockRoundTrip checks decode(encode(s)) == s bit-exactly,
// including NaN, ±Inf and out-of-order timestamps.
func TestBlockRoundTrip(t *testing.T) {
	for name, samples := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			payload := EncodeBlock(samples)
			got, err := DecodeBlock(payload)
			if err != nil {
				t.Fatal(err)
			}
			assertSamplesEqual(t, got, samples)
			ratio := float64(len(samples)*rawSampleBytes) / float64(len(payload))
			t.Logf("%d samples -> %d bytes (%.1fx)", len(samples), len(payload), ratio)
		})
	}
}

// TestBlockRoundTripRandom hammers the codec with random walks.
func TestBlockRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := time.Unix(0, 1560000000000000000)
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(500)
		samples := make([]physical.Sample, n)
		ts := base
		v := rng.NormFloat64() * 100
		for i := range samples {
			ts = ts.Add(time.Duration(rng.Int63n(10e9)))
			v += rng.NormFloat64()
			samples[i] = physical.Sample{T: ts, V: v}
		}
		payload := EncodeBlock(samples)
		got, err := DecodeBlock(payload)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		assertSamplesEqual(t, got, samples)
	}
}

// TestBlockGolden pins the on-disk bit format: encoded payloads must
// match the committed golden files byte-for-byte (a format change
// silently breaking old archives fails here), and the golden bytes
// must decode to the original samples.
func TestBlockGolden(t *testing.T) {
	for name, samples := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name+".block")
			payload := EncodeBlock(samples)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, payload, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(payload, golden) {
				t.Fatalf("encoding of %q diverged from golden file (%d vs %d bytes): the block format changed", name, len(payload), len(golden))
			}
			got, err := DecodeBlock(golden)
			if err != nil {
				t.Fatal(err)
			}
			assertSamplesEqual(t, got, samples)
		})
	}
}

// TestBlockCompression asserts the ≥8x ratio the ISSUE requires on
// SCADA-shaped data (regular cadence, small value drift).
func TestBlockCompression(t *testing.T) {
	samples := goldenCases()["regular"]
	payload := EncodeBlock(samples)
	raw := len(samples) * rawSampleBytes
	if ratio := float64(raw) / float64(len(payload)); ratio < 8 {
		t.Fatalf("compression ratio %.2fx < 8x (%d raw -> %d compressed)", ratio, raw, len(payload))
	}
}

// TestDecodeCorrupt feeds truncations and bit flips of a valid block;
// every one must return ErrCorrupt or decode cleanly — never panic.
func TestDecodeCorrupt(t *testing.T) {
	payload := EncodeBlock(goldenCases()["jitter"])
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeBlock(payload[:cut]); err == nil {
			// Some truncations still hold a complete sample run; that
			// is fine as long as nothing panics.
			continue
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), payload...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		DecodeBlock(mut) // must not panic
	}
	if _, err := DecodeBlock(nil); err == nil {
		t.Fatal("nil payload decoded")
	}
	if s, err := DecodeBlock(EncodeBlock(nil)); err != nil || len(s) != 0 {
		t.Fatalf("empty block: %v %v", s, err)
	}
}

// FuzzDecodeBlock is the native fuzz target: DecodeBlock must be
// total over arbitrary bytes. Seeds come from the golden corpus.
func FuzzDecodeBlock(f *testing.F) {
	for _, samples := range goldenCases() {
		f.Add(EncodeBlock(samples))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		samples, err := DecodeBlock(payload)
		if err != nil {
			return
		}
		// A successful decode must round-trip through the encoder.
		got, err := DecodeBlock(EncodeBlock(samples))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(got) != len(samples) {
			t.Fatalf("re-decode length %d != %d", len(got), len(samples))
		}
		for i := range got {
			if !got[i].T.Equal(samples[i].T) || math.Float64bits(got[i].V) != math.Float64bits(samples[i].V) {
				t.Fatalf("re-decode sample %d mismatch", i)
			}
		}
	})
}
