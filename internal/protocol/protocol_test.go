package protocol

import "testing"

// fakeDialect exercises the registry without importing a real codec.
type fakeDialect struct {
	id   ID
	port uint16
	mag  byte
}

func (d *fakeDialect) ID() ID                 { return d.id }
func (d *fakeDialect) Name() string           { return d.id.String() }
func (d *fakeDialect) Port() uint16           { return d.port }
func (d *fakeDialect) StationInitiates() bool { return false }
func (d *fakeDialect) Sniff(b []byte) bool    { return len(b) > 0 && b[0] == d.mag }
func (d *fakeDialect) NewSession() Session    { return nil }

func TestRegistry(t *testing.T) {
	// The registry is package-global; tests must not pollute the slots
	// real codecs register into, so save and restore.
	saved := dialects
	defer func() { dialects = saved }()
	dialects = [numIDs]Dialect{}

	a := &fakeDialect{id: C37118, port: 4712, mag: 0xAA}
	b := &fakeDialect{id: Modbus, port: 502, mag: 0x00}
	Register(a)
	Register(b)

	if Get(C37118) != Dialect(a) || Get(Modbus) != Dialect(b) || Get(IEC104) != nil {
		t.Fatal("Get returned wrong dialects")
	}
	if ByPort(4712) != Dialect(a) || ByPort(502) != Dialect(b) || ByPort(2404) != nil || ByPort(0) != nil {
		t.Fatal("ByPort returned wrong dialects")
	}
	if ByName("c37118") != Dialect(a) || ByName("dnp3") != nil {
		t.Fatal("ByName returned wrong dialects")
	}
	if Detect([]byte{0xAA, 0x01}) != Dialect(a) {
		t.Fatal("Detect missed the sniffing dialect")
	}
	if Detect([]byte{0x7F}) != nil {
		t.Fatal("Detect claimed unknown bytes")
	}
	if got := All(); len(got) != 2 || got[0] != Dialect(a) || got[1] != Dialect(b) {
		t.Fatalf("All() = %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&fakeDialect{id: C37118})
}
