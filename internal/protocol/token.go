package protocol

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Token is the dialect-neutral unit of the Markov/N-gram alphabet
// (paper §6.3.1). Proto namespaces the grammar; Kind and Code are
// dialect-local. The zero value is the IEC 104 "I0" token, and every
// IEC 104 token renders and parses exactly as it did when the alphabet
// was IEC 104-only ("S", "U<n>", "I<typeid>"), which keeps serialized
// profiles byte-identical for IEC 104-only captures.
//
// Grammars:
//
//	IEC 104:  "S", "U<func>", "I<typeid>"
//	C37.118:  "D" (data), "H" (header), "C1"/"C2" (config), "CMD"
//	Modbus:   "F<fc>" (request), "R<fc>" (response), "X<fc>" (exception)
//
// No prefix collides across dialects, so ParseToken needs no namespace
// marker in the textual form.
type Token struct {
	Proto ID
	Kind  uint8
	Code  uint16
}

// IEC 104 token kinds. These mirror iec104.FormatI/S/U byte for byte
// (pinned by a test in the iec104 package); protocol cannot import
// iec104, which sits above it.
const (
	KindIEC104I uint8 = 0
	KindIEC104S uint8 = 1
	KindIEC104U uint8 = 2
)

// C37.118 token kinds, mirroring c37118.FrameType.
const (
	KindC37Data    uint8 = 0
	KindC37Header  uint8 = 1
	KindC37Config1 uint8 = 2
	KindC37Config2 uint8 = 3
	KindC37Command uint8 = 4
)

// Modbus token kinds.
const (
	KindModbusRequest   uint8 = 0
	KindModbusResponse  uint8 = 1
	KindModbusException uint8 = 2
)

// String renders the token in its dialect's textual grammar.
func (t Token) String() string {
	switch t.Proto {
	case IEC104:
		switch t.Kind {
		case KindIEC104S:
			return "S"
		case KindIEC104U:
			return "U" + strconv.Itoa(int(t.Code))
		default:
			return "I" + strconv.Itoa(int(t.Code))
		}
	case C37118:
		switch t.Kind {
		case KindC37Data:
			return "D"
		case KindC37Header:
			return "H"
		case KindC37Config1:
			return "C1"
		case KindC37Config2:
			return "C2"
		case KindC37Command:
			return "CMD"
		}
		return "C?"
	case Modbus:
		switch t.Kind {
		case KindModbusRequest:
			return "F" + strconv.Itoa(int(t.Code))
		case KindModbusResponse:
			return "R" + strconv.Itoa(int(t.Code))
		default:
			return "X" + strconv.Itoa(int(t.Code))
		}
	}
	return "?"
}

// iec104UFuncs is the valid U-function set (1<<n control bits).
func validIEC104U(n int) bool {
	switch n {
	case 1, 2, 4, 8, 16, 32:
		return true
	}
	return false
}

// ParseToken parses any dialect's textual token form. IEC 104 strings
// accept and reject exactly what the pre-multi-protocol parser did, so
// serialized profiles round-trip unchanged.
func ParseToken(s string) (Token, error) {
	switch s {
	case "S":
		return Token{Proto: IEC104, Kind: KindIEC104S}, nil
	case "D":
		return Token{Proto: C37118, Kind: KindC37Data}, nil
	case "H":
		return Token{Proto: C37118, Kind: KindC37Header}, nil
	case "C1":
		return Token{Proto: C37118, Kind: KindC37Config1}, nil
	case "C2":
		return Token{Proto: C37118, Kind: KindC37Config2}, nil
	case "CMD":
		return Token{Proto: C37118, Kind: KindC37Command}, nil
	}
	num := func(tail string, lo, hi int) (int, bool) {
		n, err := strconv.Atoi(tail)
		return n, err == nil && n >= lo && n <= hi
	}
	switch {
	case strings.HasPrefix(s, "U"):
		n, err := strconv.Atoi(s[1:])
		if err != nil {
			return Token{}, fmt.Errorf("protocol: bad U token %q", s)
		}
		if !validIEC104U(n) {
			return Token{}, fmt.Errorf("protocol: unknown U function in token %q", s)
		}
		return Token{Proto: IEC104, Kind: KindIEC104U, Code: uint16(n)}, nil
	case strings.HasPrefix(s, "I"):
		n, ok := num(s[1:], 1, 127)
		if !ok {
			return Token{}, fmt.Errorf("protocol: bad I token %q", s)
		}
		return Token{Proto: IEC104, Kind: KindIEC104I, Code: uint16(n)}, nil
	case strings.HasPrefix(s, "F"):
		n, ok := num(s[1:], 0, 255)
		if !ok {
			return Token{}, fmt.Errorf("protocol: bad Modbus request token %q", s)
		}
		return Token{Proto: Modbus, Kind: KindModbusRequest, Code: uint16(n)}, nil
	case strings.HasPrefix(s, "R"):
		n, ok := num(s[1:], 0, 255)
		if !ok {
			return Token{}, fmt.Errorf("protocol: bad Modbus response token %q", s)
		}
		return Token{Proto: Modbus, Kind: KindModbusResponse, Code: uint16(n)}, nil
	case strings.HasPrefix(s, "X"):
		n, ok := num(s[1:], 0, 255)
		if !ok {
			return Token{}, fmt.Errorf("protocol: bad Modbus exception token %q", s)
		}
		return Token{Proto: Modbus, Kind: KindModbusException, Code: uint16(n)}, nil
	}
	return Token{}, fmt.Errorf("protocol: unrecognised token %q", s)
}

// IsCommand reports whether the token is a control-direction command —
// the property the IDS severity ladder keys on. For IEC 104 it mirrors
// iec104.TypeID.IsCommand over the command TypeID ranges (pinned
// equivalent by a test in the iec104 package); for C37.118 it is the
// command frame; for Modbus it is a write request.
func (t Token) IsCommand() bool {
	switch t.Proto {
	case IEC104:
		if t.Kind != KindIEC104I {
			return false
		}
		c := t.Code
		return c >= 45 && c <= 51 || c >= 58 && c <= 64 ||
			c == 100 || c == 101 || c == 102 || c == 103 || c == 105 || c == 107
	case C37118:
		return t.Kind == KindC37Command
	case Modbus:
		if t.Kind != KindModbusRequest {
			return false
		}
		switch t.Code {
		case 5, 6, 15, 16: // write coil / register / multiple coils / multiple registers
			return true
		}
	}
	return false
}

// Class buckets tokens into the three direction-count roles the flow
// features use: data transfer, acknowledgement, control.
type Class uint8

// Token classes (the IEC 104 I/S/U triple, generalised).
const (
	ClassData Class = iota
	ClassAck
	ClassControl
)

// Class maps the token onto the I/S/U-style role triple: IEC 104 maps
// identically; C37.118 data frames and Modbus responses carry data,
// everything else in those dialects is control.
func (t Token) Class() Class {
	switch t.Proto {
	case IEC104:
		switch t.Kind {
		case KindIEC104S:
			return ClassAck
		case KindIEC104U:
			return ClassControl
		}
		return ClassData
	case C37118:
		if t.Kind == KindC37Data {
			return ClassData
		}
		return ClassControl
	case Modbus:
		if t.Kind == KindModbusResponse {
			return ClassData
		}
		return ClassControl
	}
	return ClassData
}

// rank orders token kinds within one dialect for SortTokens: the
// IEC 104 order is the historical S < U < I; other dialects order by
// kind.
func (t Token) rank() int {
	if t.Proto == IEC104 {
		switch t.Kind {
		case KindIEC104S:
			return 0
		case KindIEC104U:
			return 1
		}
		return 2
	}
	return int(t.Kind)
}

// SortTokens orders tokens canonically for reports: by dialect, then by
// the dialect's kind order, then by code. For IEC 104-only token sets
// this is exactly the historical S < U (by function) < I (by type)
// order.
func SortTokens(ts []Token) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if ra, rb := a.rank(), b.rank(); ra != rb {
			return ra < rb
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Code < b.Code
	})
}
