// Package protocol defines the dialect-neutral contract of the
// analysis core: a Token alphabet for Markov/N-gram profiling, a Point
// measurement record for the physical/historian layers, and a Dialect
// interface + registry that the iec104, c37118 and modbus packages
// implement. The core analyzer routes TCP streams to registered
// dialects by port (or by content sniffing on mixed captures) and
// accumulates their tokens, measurements and compliance findings
// without knowing any wire format.
//
// The package sits below every codec: it imports nothing from them, so
// the token grammar and the registry are safe to use from any layer
// (core, drift, markov, ids) without import cycles.
package protocol

import "time"

// ID names a registered dialect. IEC104 is the zero value: a
// zero-valued Token is an IEC 104 token, which is what keeps the
// pre-multi-protocol serialized forms byte-identical.
type ID uint8

// Registered dialect identifiers.
const (
	// IEC104 is IEC 60870-5-104 (TCP port 2404).
	IEC104 ID = iota
	// C37118 is IEEE C37.118 synchrophasor data transfer (TCP port 4712).
	C37118
	// Modbus is Modbus/TCP (MBAP framing, TCP port 502).
	Modbus

	numIDs
)

// String returns the canonical lowercase dialect name.
func (id ID) String() string {
	switch id {
	case IEC104:
		return "iec104"
	case C37118:
		return "c37118"
	case Modbus:
		return "modbus"
	}
	return "proto?"
}

// ParseID resolves a dialect name (as printed by ID.String).
func ParseID(s string) (ID, bool) {
	switch s {
	case "iec104":
		return IEC104, true
	case "c37118":
		return C37118, true
	case "modbus":
		return Modbus, true
	}
	return 0, false
}

// C37.118 point codes: the Code values a C37.118 session emits in its
// Points. Phasor channels report their magnitude; frequency and ROCOF
// are per-PMU scalars.
const (
	C37PointFreq   uint8 = 1
	C37PointROCOF  uint8 = 2
	C37PointPhasor uint8 = 3
)

// Point is one measurement extracted from an application frame — the
// dialect-neutral record the physical store and the historian ingest.
type Point struct {
	// IOA is the dialect-local point address: the IEC 104 information
	// object address, a C37.118 channel index, a Modbus register
	// address.
	IOA uint32
	// Code is the dialect-local value type: an IEC 104 TypeID, a
	// C37.118 channel kind, a Modbus function code.
	Code uint8
	// T is the sample timestamp; the zero value means "use the capture
	// timestamp".
	T time.Time
	// V is the sample value.
	V float64
	// Command flags control-direction values (commands, setpoints,
	// register writes), stored as separate series from telemetry.
	Command bool
}

// Event is one decoded application frame. Token and Points are scratch
// state owned by the Session: they are valid only until the next Next
// call, so consumers must copy what they keep.
type Event struct {
	// Token is the frame's Markov-alphabet token.
	Token Token
	// Points holds the frame's extracted measurements (often empty).
	Points []Point
	// Err, when non-nil, marks a consumed-but-undecodable frame: the
	// framing layer recognised and skipped it, but it yields no token
	// and no points. Callers count it as a parse error.
	Err error
}

// Session is the per-flow decode state of one dialect: framing buffers,
// resync state, and whatever cross-direction pairing the dialect needs
// (Modbus transaction IDs, C37.118 per-IDCode config frames). Sessions
// are created per TCP flow and are not goroutine-safe; the sharded
// engine keeps both directions of a flow on one shard.
type Session interface {
	// Next extracts the next application frame from buf, the
	// reassembled byte stream of one direction. fromStation reports
	// whether the bytes flow station->master. It returns the decoded
	// event, the unconsumed tail (which may alias buf), how many
	// garbage bytes were skipped resynchronising, and ok=false when
	// more bytes are needed (the caller retains rest and calls again
	// after the next segment).
	//
	// The returned Event is scratch: valid until the next call.
	Next(buf []byte, fromStation bool) (ev Event, rest []byte, skipped int, ok bool)
}

// ComplianceReporter is an optional Session extension: dialects with a
// per-stream compliance story (C37.118 data-rate conformance) report it
// when the analyzer snapshots.
type ComplianceReporter interface {
	Compliance() []StreamCompliance
}

// StreamCompliance is one stream's dialect-compliance verdict — the
// multi-protocol analogue of the per-station IEC 104 StationCompliance.
type StreamCompliance struct {
	Proto ID
	// Conn labels the server-outstation relationship the stream rides.
	Conn string
	// Unit is the dialect-local unit within the stream: a C37.118 PMU
	// IDCode, a Modbus unit identifier.
	Unit string
	// ConfiguredRate / ObservedRate are frames per second: what the
	// stream's configuration declares vs what the tap saw (zero when
	// the dialect has no configured rate).
	ConfiguredRate float64
	ObservedRate   float64
	Frames         int
	Errors         int
	Compliant      bool
	Detail         string
}

// Dialect is one registered protocol: identification (port and content
// sniff) plus a Session factory.
type Dialect interface {
	ID() ID
	Name() string
	// Port is the dialect's registered TCP server port (0 = none).
	Port() uint16
	// StationInitiates reports whether the measurement-owning device
	// dials out (C37.118 PMUs stream to a listening collector) rather
	// than listening (IEC 104 outstations, Modbus servers). The
	// analyzer uses it to orient station vs master.
	StationInitiates() bool
	// Sniff reports whether b plausibly begins one of this dialect's
	// frames — the auto-detect heuristic for traffic on unregistered
	// ports. It must be cheap and must not retain b.
	Sniff(b []byte) bool
	NewSession() Session
}

// dialects is the registry, indexed by ID. Registration happens in
// package init functions only, so no locking is needed.
var dialects [numIDs]Dialect

// Register installs a dialect. Call from an init function; registering
// two dialects with one ID panics (a wiring bug, not a runtime state).
func Register(d Dialect) {
	id := d.ID()
	if int(id) >= len(dialects) {
		panic("protocol: register: ID out of range")
	}
	if dialects[id] != nil {
		panic("protocol: duplicate registration for " + id.String())
	}
	dialects[id] = d
}

// Get returns the dialect registered under id, or nil.
func Get(id ID) Dialect {
	if int(id) >= len(dialects) {
		return nil
	}
	return dialects[id]
}

// ByName resolves a registered dialect by its canonical name.
func ByName(name string) Dialect {
	id, ok := ParseID(name)
	if !ok {
		return nil
	}
	return Get(id)
}

// ByPort returns the registered dialect owning a TCP port, or nil.
func ByPort(port uint16) Dialect {
	if port == 0 {
		return nil
	}
	for _, d := range dialects {
		if d != nil && d.Port() == port {
			return d
		}
	}
	return nil
}

// Detect content-sniffs a payload against every registered dialect, in
// ID order, and returns the first claimant (or nil). Used for
// auto-detection on ports no dialect owns.
func Detect(payload []byte) Dialect {
	for _, d := range dialects {
		if d != nil && d.Sniff(payload) {
			return d
		}
	}
	return nil
}

// All returns the registered dialects in ID order.
func All() []Dialect {
	out := make([]Dialect, 0, len(dialects))
	for _, d := range dialects {
		if d != nil {
			out = append(out, d)
		}
	}
	return out
}
