package protocol

import (
	"testing"
)

func TestTokenStringRoundTrip(t *testing.T) {
	toks := []Token{
		{Proto: IEC104, Kind: KindIEC104S},
		{Proto: IEC104, Kind: KindIEC104U, Code: 1},
		{Proto: IEC104, Kind: KindIEC104U, Code: 32},
		{Proto: IEC104, Kind: KindIEC104I, Code: 13},
		{Proto: IEC104, Kind: KindIEC104I, Code: 100},
		{Proto: C37118, Kind: KindC37Data},
		{Proto: C37118, Kind: KindC37Header},
		{Proto: C37118, Kind: KindC37Config1},
		{Proto: C37118, Kind: KindC37Config2},
		{Proto: C37118, Kind: KindC37Command},
		{Proto: Modbus, Kind: KindModbusRequest, Code: 3},
		{Proto: Modbus, Kind: KindModbusResponse, Code: 4},
		{Proto: Modbus, Kind: KindModbusException, Code: 131},
	}
	seen := map[string]bool{}
	for _, tok := range toks {
		s := tok.String()
		if seen[s] {
			t.Errorf("token string %q not unique", s)
		}
		seen[s] = true
		back, err := ParseToken(s)
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", s, err)
		}
		if back != tok {
			t.Errorf("round trip %q: got %+v, want %+v", s, back, tok)
		}
	}
}

func TestTokenStringsIEC104Grammar(t *testing.T) {
	// The IEC 104 renderings must be exactly the historical ones.
	cases := map[string]Token{
		"S":    {Proto: IEC104, Kind: KindIEC104S},
		"U16":  {Proto: IEC104, Kind: KindIEC104U, Code: 16},
		"I100": {Proto: IEC104, Kind: KindIEC104I, Code: 100},
		"I0":   {Proto: IEC104, Kind: KindIEC104I, Code: 0},
	}
	for want, tok := range cases {
		if got := tok.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestParseTokenRejects(t *testing.T) {
	for _, s := range []string{
		"", "Z", "I0", "I128", "Ix", "U3", "U33", "Ux",
		"F256", "R-1", "Xx", "C3", "CM", "s", "d",
	} {
		if tok, err := ParseToken(s); err == nil {
			t.Errorf("ParseToken(%q) = %+v, want error", s, tok)
		}
	}
}

func TestIsCommand(t *testing.T) {
	cases := []struct {
		tok  Token
		want bool
	}{
		{Token{Proto: IEC104, Kind: KindIEC104I, Code: 45}, true},  // C_SC_NA_1
		{Token{Proto: IEC104, Kind: KindIEC104I, Code: 50}, true},  // C_SE_NC_1
		{Token{Proto: IEC104, Kind: KindIEC104I, Code: 100}, true}, // C_IC_NA_1
		{Token{Proto: IEC104, Kind: KindIEC104I, Code: 104}, false},
		{Token{Proto: IEC104, Kind: KindIEC104I, Code: 13}, false}, // M_ME_NC_1
		{Token{Proto: IEC104, Kind: KindIEC104U, Code: 1}, false},
		{Token{Proto: IEC104, Kind: KindIEC104S}, false},
		{Token{Proto: C37118, Kind: KindC37Command}, true},
		{Token{Proto: C37118, Kind: KindC37Data}, false},
		{Token{Proto: Modbus, Kind: KindModbusRequest, Code: 6}, true},
		{Token{Proto: Modbus, Kind: KindModbusRequest, Code: 16}, true},
		{Token{Proto: Modbus, Kind: KindModbusRequest, Code: 3}, false},
		{Token{Proto: Modbus, Kind: KindModbusResponse, Code: 6}, false},
	}
	for _, c := range cases {
		if got := c.tok.IsCommand(); got != c.want {
			t.Errorf("%s IsCommand = %v, want %v", c.tok, got, c.want)
		}
	}
}

func TestClass(t *testing.T) {
	cases := []struct {
		tok  Token
		want Class
	}{
		{Token{Proto: IEC104, Kind: KindIEC104I, Code: 13}, ClassData},
		{Token{Proto: IEC104, Kind: KindIEC104S}, ClassAck},
		{Token{Proto: IEC104, Kind: KindIEC104U, Code: 16}, ClassControl},
		{Token{Proto: C37118, Kind: KindC37Data}, ClassData},
		{Token{Proto: C37118, Kind: KindC37Config2}, ClassControl},
		{Token{Proto: Modbus, Kind: KindModbusResponse, Code: 3}, ClassData},
		{Token{Proto: Modbus, Kind: KindModbusRequest, Code: 3}, ClassControl},
	}
	for _, c := range cases {
		if got := c.tok.Class(); got != c.want {
			t.Errorf("%s Class = %v, want %v", c.tok, got, c.want)
		}
	}
}

func TestSortTokensCanonical(t *testing.T) {
	toks := []Token{
		{Proto: Modbus, Kind: KindModbusResponse, Code: 3},
		{Proto: IEC104, Kind: KindIEC104I, Code: 36},
		{Proto: C37118, Kind: KindC37Data},
		{Proto: IEC104, Kind: KindIEC104U, Code: 32},
		{Proto: IEC104, Kind: KindIEC104S},
		{Proto: Modbus, Kind: KindModbusRequest, Code: 3},
		{Proto: IEC104, Kind: KindIEC104U, Code: 1},
		{Proto: IEC104, Kind: KindIEC104I, Code: 13},
	}
	SortTokens(toks)
	want := []string{"S", "U1", "U32", "I13", "I36", "D", "F3", "R3"}
	for i, w := range want {
		if got := toks[i].String(); got != w {
			t.Fatalf("sorted[%d] = %q, want %q (full: %v)", i, got, w, toks)
		}
	}
}

func TestParseID(t *testing.T) {
	for _, id := range []ID{IEC104, C37118, Modbus} {
		got, ok := ParseID(id.String())
		if !ok || got != id {
			t.Errorf("ParseID(%q) = %v, %v", id.String(), got, ok)
		}
	}
	if _, ok := ParseID("dnp3"); ok {
		t.Error("ParseID accepted unknown dialect")
	}
}
