package station

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"uncharted/internal/iec104"
)

func TestStandbyStaysQuiet(t *testing.T) {
	o, addr := startOutstation(t, iec104.Standard)
	col := &collector{}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cs, err := DialStandby(ctx, addr, iec104.Standard)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cs.OnMeasurement = col.add
	// A spontaneous update must NOT reach a standby (STOPDT)
	// connection.
	if err := o.SetValue(1001, 200); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if n := len(col.byIOA(1001)); n != 0 {
		t.Fatalf("standby received %d spontaneous reports", n)
	}
	// After activation it does.
	if err := cs.Activate(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if err := o.SetValue(1001, 201); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, m := range col.byIOA(1001) {
			if m.Cause == iec104.CauseSpontaneous {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("activated standby received nothing")
}

func TestFailoverPromotesOnConnectionLoss(t *testing.T) {
	o, addr := startOutstation(t, iec104.Standard)
	var measurements atomic.Int64
	switched := make(chan struct{}, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	f, err := NewFailover(ctx, FailoverConfig{
		Addr:          addr,
		CommonAddr:    7,
		Profile:       iec104.Standard,
		KeepAlive:     500 * time.Millisecond,
		CheckInterval: 50 * time.Millisecond,
		OnMeasurement: func(Measurement) { measurements.Add(1) },
		OnSwitchover: func(error) {
			select {
			case switched <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if measurements.Load() == 0 {
		t.Fatal("initial interrogation yielded nothing")
	}
	before := measurements.Load()

	// Kill both live connections: the supervisor must promote the
	// standby (or redial) and interrogate again.
	o.DropConnections()
	select {
	case <-switched:
	case <-time.After(10 * time.Second):
		if f.Switches() == 0 {
			t.Fatal("no switchover after connection loss")
		}
	}
	// The new active connection interrogates, so measurements grow.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if measurements.Load() > before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no data after switchover (have %d, had %d)", measurements.Load(), before)
}

func TestFailoverCloseIdempotent(t *testing.T) {
	_, addr := startOutstation(t, iec104.Standard)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f, err := NewFailover(ctx, FailoverConfig{Addr: addr, CommonAddr: 7, Profile: iec104.Standard})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverRequiresReachableOutstation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := NewFailover(ctx, FailoverConfig{
		Addr: "127.0.0.1:1", CommonAddr: 7, Profile: iec104.Standard,
	}); err == nil {
		t.Fatal("unreachable outstation accepted")
	}
}
