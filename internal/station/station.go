// Package station implements live IEC 60870-5-104 endpoints over real
// TCP connections: an Outstation (controlled station listening on port
// 2404) and a ControlStation (controlling station that dials it). They
// speak the same codec the analysis pipeline parses, including the
// legacy dialects, so a loopback session is an end-to-end validation
// of the protocol stack — and a convenient traffic source for demos.
//
// The state machine follows the standard: connections start in the
// STOPDT state; the controlling station activates transfer with
// STARTDT act; TESTFR keep-alives flow when a link is idle for T3; the
// receiver acknowledges I-frames with an S-frame after w frames.
package station

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"uncharted/internal/iec104"
)

// Timer defaults from the standard (§4 of the paper).
const (
	DefaultT1 = 15 * time.Second // send/test APDU timeout
	DefaultT2 = 10 * time.Second // acknowledge timeout
	DefaultT3 = 20 * time.Second // idle keep-alive
	DefaultW  = 8                // ack window
)

// readFrame reads one APDU frame (start byte + length + body).
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != iec104.StartByte {
		return nil, fmt.Errorf("station: bad start byte %#02x", hdr[0])
	}
	if hdr[1] < 4 {
		return nil, fmt.Errorf("station: APCI length %d too small", hdr[1])
	}
	frame := make([]byte, 2+int(hdr[1]))
	frame[0], frame[1] = hdr[0], hdr[1]
	if _, err := io.ReadFull(r, frame[2:]); err != nil {
		return nil, err
	}
	return frame, nil
}

// link wraps one TCP connection with sequence bookkeeping and a write
// lock. Both endpoint types embed it.
type link struct {
	conn net.Conn
	mu   sync.Mutex

	profile iec104.Profile

	sendSeq uint16 // our N(S)
	recvSeq uint16 // next expected peer N(S); our N(R)
	unacked int    // received I-frames not yet S-acked
	w       int

	started bool // STARTDT active
	lastRx  time.Time
	lastTx  time.Time

	// obs is attached by Instrument, possibly after the read loop is
	// already running, hence the atomic pointer. Nil means
	// uninstrumented; every note* helper tolerates that.
	obs atomic.Pointer[stationObs]
}

// observe returns the attached observation handles (nil when
// uninstrumented).
func (l *link) observe() *stationObs { return l.obs.Load() }

func newLink(conn net.Conn, profile iec104.Profile, w int) *link {
	if w <= 0 {
		w = DefaultW
	}
	now := time.Now()
	return &link{conn: conn, profile: profile, w: w, lastRx: now, lastTx: now}
}

// send marshals and writes one APDU.
func (l *link) send(a *iec104.APDU) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sendLocked(a)
}

func (l *link) sendLocked(a *iec104.APDU) error {
	if a.Format == iec104.FormatI {
		a.SendSeq = l.sendSeq
		a.RecvSeq = l.recvSeq
		l.sendSeq = (l.sendSeq + 1) & 0x7FFF
	}
	b, err := a.Marshal(l.profile)
	if err != nil {
		return err
	}
	if err := l.conn.SetWriteDeadline(time.Now().Add(DefaultT1)); err != nil {
		return err
	}
	if _, err := l.conn.Write(b); err != nil {
		return err
	}
	l.observe().noteFrame("tx", a.Format, a.U, len(b))
	l.lastTx = time.Now()
	return nil
}

// sendI sends an I-frame with the current sequence numbers.
func (l *link) sendI(asdu *iec104.ASDU) error {
	return l.send(&iec104.APDU{Format: iec104.FormatI, ASDU: asdu})
}

// noteIReceived advances the receive sequence and acks when the window
// fills.
func (l *link) noteIReceived() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recvSeq = (l.recvSeq + 1) & 0x7FFF
	l.unacked++
	if l.unacked >= l.w {
		l.unacked = 0
		return l.sendLocked(iec104.NewS(l.recvSeq))
	}
	return nil
}

// isStarted reports the STARTDT state under the link lock.
func (l *link) isStarted() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.started
}

// ackNow flushes a pending S acknowledgement (T2 behaviour).
func (l *link) ackNow() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.unacked == 0 {
		return nil
	}
	l.unacked = 0
	return l.sendLocked(iec104.NewS(l.recvSeq))
}

var errClosed = errors.New("station: connection closed")

// closeCause renders a read-loop exit error for the journal.
func closeCause(err error) string {
	switch {
	case err == nil:
		return "local_close"
	case errors.Is(err, io.EOF):
		return "peer_closed"
	case errors.Is(err, os.ErrDeadlineExceeded):
		return "read_deadline"
	}
	return "read_error"
}

// PointDef defines one information object an outstation serves.
type PointDef struct {
	IOA   uint32
	Type  iec104.TypeID
	Value float64
}

func (p PointDef) value(t time.Time) iec104.Value {
	v := iec104.Value{Kind: iec104.KindFloat, Float: p.Value}
	switch p.Type {
	case iec104.MSpNa, iec104.MSpTb:
		v = iec104.Value{Kind: iec104.KindSingle, Bits: uint32(p.Value) & 1, Float: p.Value}
	case iec104.MDpNa, iec104.MDpTb:
		v = iec104.Value{Kind: iec104.KindDouble, Bits: uint32(p.Value) & 3, Float: p.Value}
	case iec104.MMeNa, iec104.MMeTd:
		v = iec104.Value{Kind: iec104.KindNormalized, Float: p.Value}
	case iec104.MMeNb, iec104.MMeTe:
		v = iec104.Value{Kind: iec104.KindScaled, Float: p.Value}
	}
	if p.Type.HasTimeTag() {
		v.HasTime = true
		v.Time = iec104.CP56Time2a{Time: t}
	}
	return v
}

var _ = binary.LittleEndian // reserved for future options parsing
