package station

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
)

// Measurement is one value received by a control station.
type Measurement struct {
	CommonAddr uint16
	IOA        uint32
	Type       iec104.TypeID
	Value      float64
	Cause      iec104.Cause
	At         time.Time
}

// ControlStation is a controlling station: it dials an outstation,
// activates transfer, interrogates, sends setpoints and surfaces every
// monitor-direction value through OnMeasurement.
type ControlStation struct {
	// Profile must match the outstation's dialect (use the tolerant
	// parser from internal/core when it is unknown).
	Profile iec104.Profile
	// W is the acknowledge window.
	W int
	// OnMeasurement observes every received value (called from the
	// read loop; keep it fast).
	OnMeasurement func(Measurement)

	link   *link
	conn   net.Conn
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	// waiters for activation-termination of pending commands.
	termCh chan iec104.TypeID
	conCh  chan confirmation
	errCh  chan error
}

type confirmation struct {
	Type     iec104.TypeID
	Negative bool
}

// dial opens the TCP connection and starts the read loop without
// activating transfer (the STOPDT state every fresh IEC 104 connection
// begins in).
func dial(ctx context.Context, addr string, profile iec104.Profile) (*ControlStation, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	cs := &ControlStation{
		Profile: profile,
		conn:    conn,
		termCh:  make(chan iec104.TypeID, 16),
		conCh:   make(chan confirmation, 16),
		errCh:   make(chan error, 1),
	}
	cs.link = newLink(conn, profile, cs.W)
	cs.wg.Add(1)
	go cs.readLoop()
	return cs, nil
}

// Dial connects and performs STARTDT activation.
func Dial(ctx context.Context, addr string, profile iec104.Profile) (*ControlStation, error) {
	cs, err := dial(ctx, addr, profile)
	if err != nil {
		return nil, err
	}
	if err := cs.link.send(iec104.NewU(iec104.UStartDTAct)); err != nil {
		cs.Close()
		return nil, err
	}
	// The STARTDT con arrives on the read loop; give it a moment via
	// a keep-alive round trip.
	if err := cs.TestLink(ctx); err != nil {
		cs.Close()
		return nil, fmt.Errorf("station: activation: %w", err)
	}
	return cs, nil
}

// Instrument books frame counters, the frame-size histogram and the
// active-link gauge into reg (role="control") and attaches an optional
// event journal. Safe to call after Dial: the read loop picks the
// handles up atomically. Either argument may be nil.
func (cs *ControlStation) Instrument(reg *obs.Registry, j *obs.Journal) {
	var m *stationMetrics
	if reg != nil {
		m = newStationMetrics(reg, "control")
	}
	so := newStationObs(m, j, "control", cs.conn.RemoteAddr().String())
	cs.link.obs.Store(so)
	so.noteLinkOpen()
}

// Close tears the connection down.
func (cs *ControlStation) Close() error {
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		return nil
	}
	cs.closed = true
	cs.mu.Unlock()
	err := cs.conn.Close()
	cs.wg.Wait()
	return err
}

func (cs *ControlStation) readLoop() {
	defer cs.wg.Done()
	for {
		if err := cs.conn.SetReadDeadline(time.Now().Add(DefaultT3 + DefaultT1)); err != nil {
			cs.fail(err)
			cs.link.observe().noteLinkClosed(closeCause(err))
			return
		}
		frame, err := readFrame(cs.conn)
		if err != nil {
			so := cs.link.observe()
			if errors.Is(err, os.ErrDeadlineExceeded) {
				so.noteT3Expired()
			}
			cs.fail(err)
			so.noteLinkClosed(closeCause(err))
			return
		}
		apdu, _, err := iec104.ParseAPDU(frame, cs.Profile)
		if err != nil {
			cs.fail(err)
			cs.link.observe().noteLinkClosed("parse_error")
			return
		}
		cs.link.observe().noteFrame("rx", apdu.Format, apdu.U, len(frame))
		switch apdu.Format {
		case iec104.FormatU:
			switch apdu.U {
			case iec104.UTestFRAct:
				if err := cs.link.send(iec104.NewU(iec104.UTestFRCon)); err != nil {
					cs.fail(err)
					return
				}
			case iec104.UTestFRCon:
				select {
				case cs.termCh <- 0: // keep-alive round trip marker
				default:
				}
			}
		case iec104.FormatS:
			// peer acknowledged our I-frames; nothing to track here.
		case iec104.FormatI:
			if err := cs.link.noteIReceived(); err != nil {
				cs.fail(err)
				return
			}
			cs.dispatch(apdu.ASDU)
		}
	}
}

func (cs *ControlStation) fail(err error) {
	select {
	case cs.errCh <- err:
	default:
	}
}

func (cs *ControlStation) dispatch(asdu *iec104.ASDU) {
	switch asdu.COT.Cause {
	case iec104.CauseActConfirm, iec104.CauseUnknownType, iec104.CauseUnknownIOA,
		iec104.CauseUnknownCA, iec104.CauseUnknownCause:
		select {
		case cs.conCh <- confirmation{Type: asdu.Type, Negative: asdu.COT.Negative}:
		default:
		}
		return
	case iec104.CauseActTerm:
		select {
		case cs.termCh <- asdu.Type:
		default:
		}
		return
	}
	if cs.OnMeasurement == nil {
		return
	}
	now := time.Now()
	for _, obj := range asdu.Objects {
		m := Measurement{
			CommonAddr: asdu.CommonAddr,
			IOA:        obj.IOA,
			Type:       asdu.Type,
			Value:      obj.Value.Float,
			Cause:      asdu.COT.Cause,
			At:         now,
		}
		if obj.Value.HasTime && !obj.Value.Time.Invalid {
			m.At = obj.Value.Time.Time
		}
		cs.OnMeasurement(m)
	}
}

// TestLink performs one TESTFR round trip.
func (cs *ControlStation) TestLink(ctx context.Context) error {
	if err := cs.link.send(iec104.NewU(iec104.UTestFRAct)); err != nil {
		return err
	}
	select {
	case <-cs.termCh:
		return nil
	case err := <-cs.errCh:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Interrogate sends a general interrogation and waits for the
// activation termination. Values arrive via OnMeasurement with cause
// inrogen.
func (cs *ControlStation) Interrogate(ctx context.Context, commonAddr uint16) error {
	gi := iec104.NewInterrogation(commonAddr, iec104.CauseActivation)
	if err := cs.link.sendI(gi); err != nil {
		return err
	}
	for {
		select {
		case typ := <-cs.termCh:
			if typ == iec104.CIcNa {
				// Flush the final S ack so the peer's window clears.
				return cs.link.ackNow()
			}
		case err := <-cs.errCh:
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// StopDT deactivates transfer (STOPDT act): the outstation confirms
// and stops sending I-frames; the connection stays up for keep-alives,
// like the paper's secondary connections.
func (cs *ControlStation) StopDT(ctx context.Context) error {
	if err := cs.link.send(iec104.NewU(iec104.UStopDTAct)); err != nil {
		return err
	}
	// Confirm liveness (the STOPDT con arrives on the read loop).
	return cs.TestLink(ctx)
}

// SendRaw issues an arbitrary command ASDU and waits for the
// activation confirmation, turning a negative confirmation into an
// error. Use the typed helpers (SendSetpoint, Interrogate) where one
// exists.
func (cs *ControlStation) SendRaw(ctx context.Context, asdu *iec104.ASDU) error {
	if err := cs.link.sendI(asdu); err != nil {
		return err
	}
	for {
		select {
		case con := <-cs.conCh:
			if con.Negative {
				return fmt.Errorf("station: command rejected (%v)", con.Type)
			}
			return nil
		case err := <-cs.errCh:
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SendSetpoint issues a C_SE_NC_1 command and waits for the
// confirmation. A negative confirmation becomes an error.
func (cs *ControlStation) SendSetpoint(ctx context.Context, commonAddr uint16, ioa uint32, value float64) error {
	sp := iec104.NewSetpointFloat(commonAddr, ioa, value, iec104.CauseActivation)
	if err := cs.link.sendI(sp); err != nil {
		return err
	}
	for {
		select {
		case con := <-cs.conCh:
			if con.Negative {
				return fmt.Errorf("station: setpoint rejected (%v)", con.Type)
			}
			return nil
		case err := <-cs.errCh:
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
