package station

import (
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
)

// Metric names exported by instrumented endpoints.
const (
	MetricFrames      = "uncharted_station_frames_total"
	MetricFrameBytes  = "uncharted_station_frame_bytes"
	MetricUFrames     = "uncharted_station_u_frames_total"
	MetricActiveLinks = "uncharted_station_active_links"
	MetricTimerFired  = "uncharted_station_timer_fired_total"
	MetricFailovers   = "uncharted_station_failovers_total"
)

// stationMetrics holds the pre-resolved handles shared by every link of
// one endpoint (role is "outstation" or "control").
type stationMetrics struct {
	reg  *obs.Registry
	role string

	txI, txS, txU *obs.Counter
	rxI, rxS, rxU *obs.Counter
	frameBytes    *obs.Histogram
	activeLinks   *obs.Gauge
	timerT3       *obs.Counter
}

func newStationMetrics(reg *obs.Registry, role string) *stationMetrics {
	reg.SetHelp(MetricFrames, "APDUs sent and received by live endpoints, by role, direction and format.")
	reg.SetHelp(MetricFrameBytes, "On-the-wire APDU sizes in bytes, both directions.")
	reg.SetHelp(MetricUFrames, "U-format control frames by function.")
	reg.SetHelp(MetricActiveLinks, "Live TCP links currently held by the endpoint.")
	reg.SetHelp(MetricTimerFired, "Protocol timer expiries (t3 is the idle keep-alive window).")
	reg.SetHelp(MetricFailovers, "Redundancy-group promotions of a standby or fresh connection.")
	return &stationMetrics{
		reg:         reg,
		role:        role,
		txI:         reg.Counter(MetricFrames, "role", role, "dir", "tx", "format", "i"),
		txS:         reg.Counter(MetricFrames, "role", role, "dir", "tx", "format", "s"),
		txU:         reg.Counter(MetricFrames, "role", role, "dir", "tx", "format", "u"),
		rxI:         reg.Counter(MetricFrames, "role", role, "dir", "rx", "format", "i"),
		rxS:         reg.Counter(MetricFrames, "role", role, "dir", "rx", "format", "s"),
		rxU:         reg.Counter(MetricFrames, "role", role, "dir", "rx", "format", "u"),
		frameBytes:  reg.Histogram(MetricFrameBytes, obs.SizeBuckets, "role", role),
		activeLinks: reg.Gauge(MetricActiveLinks, "role", role),
		timerT3:     reg.Counter(MetricTimerFired, "role", role, "timer", "t3"),
	}
}

// uKindLabel renders a U function for the by-kind counter.
func uKindLabel(u iec104.UFunc) string {
	switch u {
	case iec104.UStartDTAct:
		return "startdt_act"
	case iec104.UStartDTCon:
		return "startdt_con"
	case iec104.UStopDTAct:
		return "stopdt_act"
	case iec104.UStopDTCon:
		return "stopdt_con"
	case iec104.UTestFRAct:
		return "testfr_act"
	case iec104.UTestFRCon:
		return "testfr_con"
	}
	return "unknown"
}

// stationObs binds the shared metrics and journal to one link. m may
// be nil when only a journal is attached.
type stationObs struct {
	m       *stationMetrics
	journal *obs.Journal
	role    string // "outstation" or "control"
	conn    string // peer address label for journal events
}

func newStationObs(m *stationMetrics, j *obs.Journal, role, conn string) *stationObs {
	return &stationObs{m: m, journal: j, role: role, conn: conn}
}

// noteFrame books one APDU in the given direction. Nil-safe.
func (so *stationObs) noteFrame(dir string, format iec104.Format, u iec104.UFunc, size int) {
	if so == nil || so.m == nil {
		return
	}
	tx := dir == "tx"
	switch format {
	case iec104.FormatI:
		if tx {
			so.m.txI.Inc()
		} else {
			so.m.rxI.Inc()
		}
	case iec104.FormatS:
		if tx {
			so.m.txS.Inc()
		} else {
			so.m.rxS.Inc()
		}
	case iec104.FormatU:
		if tx {
			so.m.txU.Inc()
		} else {
			so.m.rxU.Inc()
		}
		// U frames are rare (handshakes and keep-alives), so the
		// per-function series resolves lazily through the registry.
		so.m.reg.Counter(MetricUFrames, "role", so.m.role, "dir", dir, "kind", uKindLabel(u)).Inc()
	}
	so.m.frameBytes.Observe(float64(size))
}

// noteLinkOpen books a new live link. Nil-safe.
func (so *stationObs) noteLinkOpen() {
	if so == nil {
		return
	}
	if so.m != nil {
		so.m.activeLinks.Add(1)
	}
	so.journal.Log(time.Time{}, obs.EventConnState, so.conn, map[string]any{
		"state": "open",
		"role":  so.role,
	})
}

// noteLinkClosed books a link teardown with its cause. Nil-safe.
func (so *stationObs) noteLinkClosed(cause string) {
	if so == nil {
		return
	}
	if so.m != nil {
		so.m.activeLinks.Add(-1)
	}
	so.journal.Log(time.Time{}, obs.EventConnState, so.conn, map[string]any{
		"state": "closed",
		"role":  so.role,
		"cause": cause,
	})
}

// noteStartDT books a transfer-state transition. Nil-safe.
func (so *stationObs) noteStartDT(started bool) {
	if so == nil {
		return
	}
	state := "startdt"
	if !started {
		state = "stopdt"
	}
	so.journal.Log(time.Time{}, obs.EventConnState, so.conn, map[string]any{
		"state": state,
		"role":  so.role,
	})
}

// noteT3Expired books an idle keep-alive window running out. Nil-safe.
func (so *stationObs) noteT3Expired() {
	if so == nil {
		return
	}
	if so.m != nil {
		so.m.timerT3.Inc()
	}
	so.journal.Log(time.Time{}, obs.EventTimerFired, so.conn, map[string]any{
		"timer":   "t3",
		"role":    so.role,
		"timeout": (DefaultT3 + DefaultT1).String(),
	})
}
