package station

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"uncharted/internal/iec104"
)

func startOutstation(t *testing.T, profile iec104.Profile) (*Outstation, string) {
	t.Helper()
	o := NewOutstation(7)
	o.Profile = profile
	o.AddPoint(PointDef{IOA: 1001, Type: iec104.MMeNc, Value: 117.5})
	o.AddPoint(PointDef{IOA: 1002, Type: iec104.MMeTf, Value: 60.01})
	o.AddPoint(PointDef{IOA: 3001, Type: iec104.MDpNa, Value: 2})
	o.AddPoint(PointDef{IOA: 7001, Type: iec104.CSeNc, Value: 100})
	addr, err := o.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { o.Close() })
	return o, addr.String()
}

type collector struct {
	mu sync.Mutex
	ms []Measurement
}

func (c *collector) add(m Measurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ms = append(c.ms, m)
}

func (c *collector) byIOA(ioa uint32) []Measurement {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Measurement
	for _, m := range c.ms {
		if m.IOA == ioa {
			out = append(out, m)
		}
	}
	return out
}

func dialT(t *testing.T, addr string, profile iec104.Profile, col *collector) *ControlStation {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cs, err := Dial(ctx, addr, profile)
	if err != nil {
		t.Fatal(err)
	}
	if col != nil {
		cs.OnMeasurement = col.add
	}
	t.Cleanup(func() { cs.Close() })
	return cs
}

func TestInterrogationOverLoopback(t *testing.T) {
	_, addr := startOutstation(t, iec104.Standard)
	col := &collector{}
	cs := dialT(t, addr, iec104.Standard, col)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cs.Interrogate(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if got := col.byIOA(1001); len(got) != 1 || got[0].Value != 117.5 {
		t.Fatalf("IOA 1001: %+v", got)
	}
	if got := col.byIOA(3001); len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("breaker point: %+v", got)
	}
	for _, m := range col.byIOA(1002) {
		if m.Cause != iec104.CauseInrogen {
			t.Fatalf("interrogated cause %v", m.Cause)
		}
	}
	// Command-direction objects (the setpoint target) are not part of
	// the monitor image a general interrogation returns.
	if got := col.byIOA(7001); len(got) != 0 {
		t.Fatalf("setpoint object leaked into GI image: %+v", got)
	}
}

func TestSetpointCommand(t *testing.T) {
	o, addr := startOutstation(t, iec104.Standard)
	var gotIOA uint32
	var gotVal float64
	done := make(chan struct{})
	o.OnCommand = func(ioa uint32, v float64) {
		gotIOA, gotVal = ioa, v
		close(done)
	}
	cs := dialT(t, addr, iec104.Standard, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cs.SendSetpoint(ctx, 7, 7001, 84.5); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("command callback never fired")
	}
	if gotIOA != 7001 || gotVal != 84.5 {
		t.Fatalf("command %d=%v", gotIOA, gotVal)
	}
}

func TestSetpointUnknownIOARejected(t *testing.T) {
	_, addr := startOutstation(t, iec104.Standard)
	cs := dialT(t, addr, iec104.Standard, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cs.SendSetpoint(ctx, 7, 9999, 1); err == nil {
		t.Fatal("unknown IOA accepted")
	}
}

func TestSpontaneousPush(t *testing.T) {
	o, addr := startOutstation(t, iec104.Standard)
	col := &collector{}
	cs := dialT(t, addr, iec104.Standard, col)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Activation is implicit in Dial; ensure the link round-trips.
	if err := cs.TestLink(ctx); err != nil {
		t.Fatal(err)
	}
	if err := o.SetValue(1001, 250.25); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ms := col.byIOA(1001)
		if len(ms) > 0 {
			if ms[0].Cause != iec104.CauseSpontaneous || ms[0].Value != 250.25 {
				t.Fatalf("spontaneous %+v", ms[0])
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no spontaneous report arrived")
}

func TestSetValueUnknownIOA(t *testing.T) {
	o, _ := startOutstation(t, iec104.Standard)
	if err := o.SetValue(4242, 1); err == nil {
		t.Fatal("unknown IOA accepted")
	}
}

func TestLegacyDialectLoopback(t *testing.T) {
	// A legacy-COT outstation and a matching control station must
	// interoperate — the §6.1 SCADA-vendor workaround in miniature.
	_, addr := startOutstation(t, iec104.LegacyCOT)
	col := &collector{}
	cs := dialT(t, addr, iec104.LegacyCOT, col)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cs.Interrogate(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if len(col.byIOA(1001)) == 0 {
		t.Fatal("legacy interrogation returned nothing")
	}
}

func TestDialWrongProfileFails(t *testing.T) {
	// A standard-profile control station talking to a legacy
	// outstation must not silently succeed in interrogating it.
	_, addr := startOutstation(t, iec104.LegacyCOT)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cs, err := Dial(ctx, addr, iec104.Standard)
	if err != nil {
		return // dial-time failure is acceptable
	}
	defer cs.Close()
	ictx, icancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer icancel()
	if err := cs.Interrogate(ictx, 7); err == nil {
		t.Fatal("interrogation with mismatched dialect succeeded")
	}
}

func TestRejectingOutstation(t *testing.T) {
	o := NewOutstation(7)
	o.RejectConnections = true
	addr, err := o.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := Dial(ctx, addr.String(), iec104.Standard); err == nil {
		t.Fatal("rejecting outstation accepted activation")
	}
}

func TestConcurrentControlStations(t *testing.T) {
	// Primary/secondary style: two control stations against one RTU.
	o, addr := startOutstation(t, iec104.Standard)
	col1, col2 := &collector{}, &collector{}
	cs1 := dialT(t, addr, iec104.Standard, col1)
	cs2 := dialT(t, addr, iec104.Standard, col2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cs1.Interrogate(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if err := cs2.Interrogate(ctx, 7); err != nil {
		t.Fatal(err)
	}
	// A spontaneous update reaches both.
	if err := o.SetValue(1002, 59.9); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(col1.byIOA(1002)) > 1 && len(col2.byIOA(1002)) > 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("spontaneous update did not reach both stations")
}

func TestOutstationCloseIdempotent(t *testing.T) {
	o, _ := startOutstation(t, iec104.Standard)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err == nil {
		// Second close may error (listener already closed) or not;
		// either way it must not panic or hang.
		return
	}
}

func TestStopDTAndUnknownCommand(t *testing.T) {
	o, addr := startOutstation(t, iec104.Standard)
	col := &collector{}
	cs := dialT(t, addr, iec104.Standard, col)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// STOPDT: the outstation confirms and stops pushing spontaneous
	// updates.
	if err := cs.StopDT(ctx); err != nil {
		t.Fatal(err)
	}
	if err := o.SetValue(1001, 999); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	for _, m := range col.byIOA(1001) {
		if m.Cause == iec104.CauseSpontaneous {
			t.Fatal("spontaneous report after STOPDT")
		}
	}
}

func TestUnknownCommandTypeRejected(t *testing.T) {
	_, addr := startOutstation(t, iec104.Standard)
	cs := dialT(t, addr, iec104.Standard, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A reset-process command is not implemented by the demo RTU: the
	// negative confirmation must surface as an error.
	if err := cs.SendRaw(ctx, &iec104.ASDU{
		Type:       iec104.CRpNa,
		COT:        iec104.COT{Cause: iec104.CauseActivation},
		CommonAddr: 7,
		Objects:    []iec104.InfoObject{{IOA: 0, Value: iec104.Value{Kind: iec104.KindQualifier, Bits: 1}}},
	}); err == nil {
		t.Fatal("unknown command type accepted")
	}
}

func TestClockSyncAccepted(t *testing.T) {
	_, addr := startOutstation(t, iec104.Standard)
	cs := dialT(t, addr, iec104.Standard, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cs.SendRaw(ctx, &iec104.ASDU{
		Type:       iec104.CCsNa,
		COT:        iec104.COT{Cause: iec104.CauseActivation},
		CommonAddr: 7,
		Objects: []iec104.InfoObject{{IOA: 0, Value: iec104.Value{
			Kind: iec104.KindNone, HasTime: true,
			Time: iec104.CP56Time2a{Time: time.Now()},
		}}},
	}); err != nil {
		t.Fatalf("clock sync rejected: %v", err)
	}
}

func TestFailoverAccessors(t *testing.T) {
	_, addr := startOutstation(t, iec104.Standard)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f, err := NewFailover(ctx, FailoverConfig{Addr: addr, CommonAddr: 7, Profile: iec104.Standard})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Active() == nil {
		t.Fatal("no active connection")
	}
	if f.Switches() != 0 {
		t.Fatalf("switches %d before any failure", f.Switches())
	}
}

func TestServeConnBroadcastAndActiveLink(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rtu := NewOutstation(7)
	rtu.AddPoint(PointDef{IOA: 1, Type: iec104.MMeNc, Value: 10})
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		rtu.ServeConn(conn)
	}()

	// Broadcasting with no active link fails cleanly.
	asdu := iec104.NewMeasurement(iec104.MMeNc, 7, 1,
		iec104.Value{Kind: iec104.KindFloat, Float: 42}, iec104.CausePeriodic)
	if err := rtu.Broadcast(asdu); err == nil {
		t.Fatal("broadcast without active link succeeded")
	}
	if rtu.HasActiveLink() {
		t.Fatal("active link before any connection")
	}

	col := &collector{}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cs, err := Dial(ctx, ln.Addr().String(), iec104.Standard)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cs.OnMeasurement = col.add

	deadline := time.Now().Add(2 * time.Second)
	for !rtu.HasActiveLink() {
		if time.Now().After(deadline) {
			t.Fatal("link never activated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := rtu.Broadcast(asdu); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ms := col.byIOA(1)
		if len(ms) > 0 {
			if ms[0].Value != 42 || ms[0].Cause != iec104.CausePeriodic {
				t.Fatalf("broadcast arrived mangled: %+v", ms[0])
			}
			cs.Close()
			<-done // ServeConn returns when the peer hangs up
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("broadcast never arrived")
}
