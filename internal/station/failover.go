package station

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
)

// DialStandby connects to an outstation without activating transfer:
// the connection idles in the STOPDT state exchanging TESTFR
// keep-alives — the paper's secondary (redundant) connection.
func DialStandby(ctx context.Context, addr string, profile iec104.Profile) (*ControlStation, error) {
	cs, err := dial(ctx, addr, profile)
	if err != nil {
		return nil, err
	}
	// Verify liveness with one keep-alive round trip.
	if err := cs.TestLink(ctx); err != nil {
		cs.Close()
		return nil, err
	}
	return cs, nil
}

// Activate promotes a standby connection: STARTDT act (acknowledged by
// the outstation) followed by a general interrogation — the switchover
// sequence of the paper's Fig. 16.
func (cs *ControlStation) Activate(ctx context.Context, commonAddr uint16) error {
	if err := cs.link.send(iec104.NewU(iec104.UStartDTAct)); err != nil {
		return err
	}
	if err := cs.TestLink(ctx); err != nil {
		return fmt.Errorf("station: activation: %w", err)
	}
	return cs.Interrogate(ctx, commonAddr)
}

// Err returns the first fatal connection error, if any (non-blocking).
func (cs *ControlStation) Err() error {
	select {
	case err := <-cs.errCh:
		return err
	default:
		return nil
	}
}

// FailoverConfig wires a redundancy group.
type FailoverConfig struct {
	// Addr is the outstation's address.
	Addr string
	// CommonAddr is its ASDU address.
	CommonAddr uint16
	Profile    iec104.Profile
	// KeepAlive is the standby TESTFR cadence (default 30s as in the
	// paper's network; the standard default T3 is 20s).
	KeepAlive time.Duration
	// CheckInterval is how often the group health-checks the active
	// connection (default 1s).
	CheckInterval time.Duration
	// OnMeasurement receives values from whichever connection is
	// active.
	OnMeasurement func(Measurement)
	// OnSwitchover is notified when the standby gets promoted.
	OnSwitchover func(reason error)
	// Registry, when set, books the group's failover counter and
	// instruments every connection the group dials.
	Registry *obs.Registry
	// Journal, when set, receives failover and conn_state events.
	Journal *obs.Journal
}

// Failover maintains a primary and a standby connection to one
// outstation, reproducing the redundant-connection behaviour of the
// paper's Fig. 4: the active link carries I traffic; the standby only
// keep-alives; when the active link dies the standby is promoted with
// STARTDT + interrogation and a fresh standby is dialled.
type Failover struct {
	cfg FailoverConfig

	mu       sync.Mutex
	active   *ControlStation
	standby  *ControlStation
	closed   bool
	switches int

	failovers *obs.Counter // nil when cfg.Registry is nil

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// instrument attaches the group's observability to a freshly dialled
// connection.
func (f *Failover) instrument(cs *ControlStation) {
	if f.cfg.Registry != nil || f.cfg.Journal != nil {
		cs.Instrument(f.cfg.Registry, f.cfg.Journal)
	}
}

// noteFailover books one promotion (mode is "standby_promoted" or
// "redial") with the triggering error.
func (f *Failover) noteFailover(mode string, reason error) {
	if f.failovers != nil {
		f.failovers.Inc()
	}
	attrs := map[string]any{"mode": mode}
	if reason != nil {
		attrs["reason"] = reason.Error()
	}
	f.cfg.Journal.Log(time.Time{}, obs.EventFailover, f.cfg.Addr, attrs)
}

// NewFailover dials both connections and starts supervision.
func NewFailover(ctx context.Context, cfg FailoverConfig) (*Failover, error) {
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 30 * time.Second
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = time.Second
	}
	f := &Failover{cfg: cfg}
	if cfg.Registry != nil {
		f.failovers = cfg.Registry.Counter(MetricFailovers)
	}

	active, err := Dial(ctx, cfg.Addr, cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("station: failover primary: %w", err)
	}
	f.instrument(active)
	active.OnMeasurement = cfg.OnMeasurement
	if err := active.Interrogate(ctx, cfg.CommonAddr); err != nil {
		active.Close()
		return nil, fmt.Errorf("station: failover interrogation: %w", err)
	}
	standby, err := DialStandby(ctx, cfg.Addr, cfg.Profile)
	if err != nil {
		active.Close()
		return nil, fmt.Errorf("station: failover standby: %w", err)
	}
	f.instrument(standby)
	f.active, f.standby = active, standby

	runCtx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.wg.Add(1)
	go f.supervise(runCtx)
	return f, nil
}

// Switches reports how many promotions have happened.
func (f *Failover) Switches() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.switches
}

// Active returns the currently active connection (may change across
// calls).
func (f *Failover) Active() *ControlStation {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

// Close tears both connections down.
func (f *Failover) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	active, standby := f.active, f.standby
	f.mu.Unlock()
	f.cancel()
	if active != nil {
		active.Close()
	}
	if standby != nil {
		standby.Close()
	}
	f.wg.Wait()
	return nil
}

// supervise keep-alives the standby and health-checks the active link.
func (f *Failover) supervise(ctx context.Context) {
	defer f.wg.Done()
	checkTick := time.NewTicker(f.cfg.CheckInterval)
	defer checkTick.Stop()
	kaTick := time.NewTicker(f.cfg.KeepAlive)
	defer kaTick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-kaTick.C:
			f.mu.Lock()
			standby := f.standby
			f.mu.Unlock()
			if standby == nil {
				continue
			}
			kctx, cancel := context.WithTimeout(ctx, f.cfg.CheckInterval*3)
			err := standby.TestLink(kctx)
			cancel()
			if err != nil {
				// The standby died; replace it quietly.
				standby.Close()
				f.redial(ctx, false)
			}
		case <-checkTick.C:
			f.mu.Lock()
			active := f.active
			f.mu.Unlock()
			if active == nil {
				continue
			}
			if err := active.Err(); err != nil {
				f.promote(ctx, err)
			}
		}
	}
}

// promote makes the standby active and dials a replacement standby.
func (f *Failover) promote(ctx context.Context, reason error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	old := f.active
	next := f.standby
	f.standby = nil
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if next == nil {
		f.redialActive(ctx, reason)
		return
	}
	next.OnMeasurement = f.cfg.OnMeasurement
	actCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	err := next.Activate(actCtx, f.cfg.CommonAddr)
	cancel()
	if err != nil {
		// The standby died with the active link (shared outage);
		// fall back to a fresh connection.
		next.Close()
		f.redialActive(ctx, reason)
		return
	}
	f.mu.Lock()
	f.active = next
	f.switches++
	cb := f.cfg.OnSwitchover
	f.mu.Unlock()
	f.noteFailover("standby_promoted", reason)
	if cb != nil {
		cb(reason)
	}
	f.redial(ctx, false)
}

// redialActive establishes a fresh active connection after both links
// of the group failed, retrying until the context expires.
func (f *Failover) redialActive(ctx context.Context, reason error) {
	for ctx.Err() == nil {
		dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		cs, err := Dial(dctx, f.cfg.Addr, f.cfg.Profile)
		cancel()
		if err == nil {
			f.instrument(cs)
			cs.OnMeasurement = f.cfg.OnMeasurement
			ictx, icancel := context.WithTimeout(ctx, 10*time.Second)
			err = cs.Interrogate(ictx, f.cfg.CommonAddr)
			icancel()
			if err == nil {
				f.mu.Lock()
				if f.closed {
					f.mu.Unlock()
					cs.Close()
					return
				}
				f.active = cs
				f.switches++
				cb := f.cfg.OnSwitchover
				f.mu.Unlock()
				f.noteFailover("redial", reason)
				if cb != nil {
					cb(reason)
				}
				f.redial(ctx, false)
				return
			}
			cs.Close()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(f.cfg.CheckInterval):
		}
	}
}

// redial replaces the standby connection.
func (f *Failover) redial(ctx context.Context, activeSlot bool) {
	if activeSlot {
		f.redialActive(ctx, errors.New("station: redial requested"))
		return
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	cs, err := DialStandby(dctx, f.cfg.Addr, f.cfg.Profile)
	if err != nil {
		return
	}
	f.instrument(cs)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		cs.Close()
		return
	}
	f.standby = cs
	f.mu.Unlock()
}
