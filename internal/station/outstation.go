package station

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
)

// Outstation is a controlled station: it listens for control-station
// connections, answers interrogations from its point table, confirms
// setpoint commands, and pushes spontaneous updates on active links.
type Outstation struct {
	CommonAddr uint16
	// Profile lets the outstation speak a legacy dialect, reproducing
	// the non-compliant RTUs of §6.1.
	Profile iec104.Profile
	// W is the acknowledge window (default 8).
	W int
	// OnCommand, when set, observes accepted setpoint commands.
	OnCommand func(ioa uint32, value float64)
	// RejectConnections makes the outstation accept TCP and then
	// reset as soon as a U frame arrives — the Fig. 9 pathology.
	RejectConnections bool
	// Logf, when set, receives debug lines.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	points map[uint32]PointDef
	order  []uint32
	links  map[*link]bool

	metrics *stationMetrics
	journal *obs.Journal

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewOutstation builds an outstation with the standard profile.
func NewOutstation(commonAddr uint16) *Outstation {
	return &Outstation{
		CommonAddr: commonAddr,
		Profile:    iec104.Standard,
		points:     make(map[uint32]PointDef),
		links:      make(map[*link]bool),
		closed:     make(chan struct{}),
	}
}

// Instrument books per-link frame counters, the frame-size histogram
// and the active-link gauge into reg (role="outstation") and attaches
// an optional event journal. Call before Listen or ServeConn; either
// argument may be nil.
func (o *Outstation) Instrument(reg *obs.Registry, j *obs.Journal) {
	if reg != nil {
		o.metrics = newStationMetrics(reg, "outstation")
	}
	o.journal = j
}

// AddPoint registers an information object.
func (o *Outstation) AddPoint(p PointDef) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, exists := o.points[p.IOA]; !exists {
		o.order = append(o.order, p.IOA)
	}
	o.points[p.IOA] = p
}

// SetValue updates a point and pushes a spontaneous report on every
// active (STARTDT) link.
func (o *Outstation) SetValue(ioa uint32, v float64) error {
	o.mu.Lock()
	p, ok := o.points[ioa]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("station: unknown IOA %d", ioa)
	}
	p.Value = v
	o.points[ioa] = p
	var targets []*link
	for l := range o.links {
		if l.isStarted() {
			targets = append(targets, l)
		}
	}
	o.mu.Unlock()

	asdu := iec104.NewMeasurement(p.Type, o.CommonAddr, p.IOA, p.value(time.Now()), iec104.CauseSpontaneous)
	for _, l := range targets {
		if err := l.sendI(asdu); err != nil {
			o.logf("spontaneous push: %v", err)
		}
	}
	return nil
}

// Listen starts serving on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address.
func (o *Outstation) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o.ln = ln
	o.wg.Add(1)
	go o.acceptLoop()
	return ln.Addr(), nil
}

// Close stops the listener and all connections.
func (o *Outstation) Close() error {
	select {
	case <-o.closed:
	default:
		close(o.closed)
	}
	var err error
	if o.ln != nil {
		err = o.ln.Close()
	}
	o.mu.Lock()
	for l := range o.links {
		l.conn.Close()
	}
	o.mu.Unlock()
	o.wg.Wait()
	return err
}

// ServeConn serves a single pre-accepted connection synchronously,
// returning when the peer disconnects. It lets callers embed the
// outstation behind their own listener (e.g. the replay tool).
func (o *Outstation) ServeConn(conn net.Conn) {
	o.wg.Add(1)
	o.serve(conn)
}

// HasActiveLink reports whether at least one connection has completed
// STARTDT activation.
func (o *Outstation) HasActiveLink() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for l := range o.links {
		if l.isStarted() {
			return true
		}
	}
	return false
}

// Broadcast pushes an arbitrary monitor-direction ASDU to every
// active (STARTDT) link, preserving its cause of transmission. It
// returns an error when no active link accepted the frame.
func (o *Outstation) Broadcast(asdu *iec104.ASDU) error {
	o.mu.Lock()
	var targets []*link
	for l := range o.links {
		if l.isStarted() {
			targets = append(targets, l)
		}
	}
	o.mu.Unlock()
	if len(targets) == 0 {
		return fmt.Errorf("station: no active connection to broadcast to")
	}
	var lastErr error
	sent := 0
	for _, l := range targets {
		if err := l.sendI(asdu); err != nil {
			lastErr = err
			continue
		}
		sent++
	}
	if sent == 0 {
		return lastErr
	}
	return nil
}

// DropConnections closes every live connection without stopping the
// listener — simulating the active-link failure that triggers the
// redundant-connection switchover of the paper's Fig. 4.
func (o *Outstation) DropConnections() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for l := range o.links {
		l.conn.Close()
	}
}

func (o *Outstation) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o *Outstation) acceptLoop() {
	defer o.wg.Done()
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			select {
			case <-o.closed:
				return
			default:
				log.Printf("station: accept: %v", err)
				return
			}
		}
		o.wg.Add(1)
		go o.serve(conn)
	}
}

func (o *Outstation) serve(conn net.Conn) {
	defer o.wg.Done()
	defer conn.Close()
	l := newLink(conn, o.Profile, o.W)
	if o.metrics != nil || o.journal != nil {
		l.obs.Store(newStationObs(o.metrics, o.journal, "outstation", conn.RemoteAddr().String()))
	}
	so := l.observe()
	so.noteLinkOpen()
	o.mu.Lock()
	o.links[l] = true
	o.mu.Unlock()
	defer func() {
		o.mu.Lock()
		delete(o.links, l)
		o.mu.Unlock()
	}()

	for {
		if err := conn.SetReadDeadline(time.Now().Add(DefaultT3 + DefaultT1)); err != nil {
			so.noteLinkClosed(closeCause(err))
			return
		}
		frame, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				so.noteT3Expired()
			}
			so.noteLinkClosed(closeCause(err))
			return
		}
		apdu, _, err := iec104.ParseAPDU(frame, o.Profile)
		if err != nil {
			o.logf("parse: %v", err)
			so.noteLinkClosed("parse_error")
			return
		}
		so.noteFrame("rx", apdu.Format, apdu.U, len(frame))
		if o.RejectConnections {
			// The misbehaving RTUs: accept TCP, then reset at the
			// first application frame.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			so.noteLinkClosed("rejected")
			return
		}
		if err := o.handle(l, apdu); err != nil {
			o.logf("handle: %v", err)
			so.noteLinkClosed("handle_error")
			return
		}
	}
}

func (o *Outstation) handle(l *link, apdu *iec104.APDU) error {
	switch apdu.Format {
	case iec104.FormatU:
		switch apdu.U {
		case iec104.UStartDTAct:
			l.mu.Lock()
			l.started = true
			l.mu.Unlock()
			l.observe().noteStartDT(true)
			return l.send(iec104.NewU(iec104.UStartDTCon))
		case iec104.UStopDTAct:
			l.mu.Lock()
			l.started = false
			l.mu.Unlock()
			l.observe().noteStartDT(false)
			return l.send(iec104.NewU(iec104.UStopDTCon))
		case iec104.UTestFRAct:
			return l.send(iec104.NewU(iec104.UTestFRCon))
		}
		return nil
	case iec104.FormatS:
		return nil
	}
	// I-format: commands from the controlling station.
	if err := l.noteIReceived(); err != nil {
		return err
	}
	asdu := apdu.ASDU
	switch asdu.Type {
	case iec104.CIcNa:
		return o.serveInterrogation(l, asdu)
	case iec104.CSeNc, iec104.CSeNa, iec104.CSeNb:
		return o.serveSetpoint(l, asdu)
	case iec104.CCsNa:
		con := *asdu
		con.COT.Cause = iec104.CauseActConfirm
		return l.sendI(&con)
	default:
		neg := *asdu
		neg.COT.Cause = iec104.CauseUnknownType
		neg.COT.Negative = true
		return l.sendI(&neg)
	}
}

func (o *Outstation) serveInterrogation(l *link, act *iec104.ASDU) error {
	con := *act
	con.COT.Cause = iec104.CauseActConfirm
	if err := l.sendI(&con); err != nil {
		return err
	}
	o.mu.Lock()
	pts := make([]PointDef, 0, len(o.order))
	for _, ioa := range o.order {
		p := o.points[ioa]
		// A general interrogation returns the monitor-direction image;
		// control-direction objects (setpoint targets) are excluded,
		// as on real RTUs.
		if p.Type.IsCommand() {
			continue
		}
		pts = append(pts, p)
	}
	o.mu.Unlock()
	now := time.Now()
	for _, p := range pts {
		asdu := iec104.NewMeasurement(p.Type, o.CommonAddr, p.IOA, p.value(now), iec104.CauseInrogen)
		if err := l.sendI(asdu); err != nil {
			return err
		}
	}
	term := *act
	term.COT.Cause = iec104.CauseActTerm
	return l.sendI(&term)
}

func (o *Outstation) serveSetpoint(l *link, act *iec104.ASDU) error {
	obj := act.Objects[0]
	o.mu.Lock()
	p, known := o.points[obj.IOA]
	if known {
		p.Value = obj.Value.Float
		o.points[obj.IOA] = p
	}
	cb := o.OnCommand
	o.mu.Unlock()

	con := *act
	con.COT.Cause = iec104.CauseActConfirm
	if !known {
		con.COT.Cause = iec104.CauseUnknownIOA
		con.COT.Negative = true
	}
	if err := l.sendI(&con); err != nil {
		return err
	}
	if known && cb != nil {
		cb(obj.IOA, obj.Value.Float)
	}
	return nil
}
