package experiments

import (
	"fmt"
	"strings"

	"uncharted/internal/pcap"
	"uncharted/internal/topology"
)

// Fig7Compliance regenerates the §6.1 compliance study: the legacy
// stations are 100% invalid for a strict parser and fully decodable by
// the tolerant one.
func (r *Runner) Fig7Compliance() (Result, error) {
	var b strings.Builder
	for _, year := range []topology.Year{topology.Y1, topology.Y2} {
		a, err := r.Analyzer(year)
		if err != nil {
			return Result{}, err
		}
		rep := a.Compliance()
		fmt.Fprintf(&b, "%v non-compliant stations: %s\n", year, strings.Join(rep.NonCompliant, ", "))
		for _, sc := range rep.Stations {
			if !sc.NonCompliant() {
				continue
			}
			frac := 0.0
			if sc.Frames > 0 {
				frac = float64(sc.StrictInvalid) / float64(sc.Frames)
			}
			fmt.Fprintf(&b, "  %-4s dialect=%-13s frames=%-6d strict-invalid=%s\n",
				sc.Name, sc.Profile, sc.Frames, pct(frac))
		}
	}
	b.WriteString("\nPaper: O37 uses 2-octet IOAs; O28, O53, O58 use 1-octet COT;\n" +
		"       Wireshark reports 100% invalid packets for these, our parser decodes all.\n")
	return Result{ID: "fig7", Title: "IEC 104 compliance and legacy dialects", Text: b.String()}, nil
}

// Table3Flows regenerates the short-/long-lived flow accounting.
func (r *Runner) Table3Flows() (Result, error) {
	var t table
	t.row("Metric", "Y1", "Y2", "Paper-Y1", "Paper-Y2")
	var rows [2]struct {
		sub, over, short, long int
		subP, shortP, longP    float64
	}
	for i, year := range []topology.Year{topology.Y1, topology.Y2} {
		a, err := r.Analyzer(year)
		if err != nil {
			return Result{}, err
		}
		s := a.FlowAnalysis().Summary
		rows[i].sub = s.ShortLivedSubSec
		rows[i].over = s.ShortLivedOverSec
		rows[i].short = s.ShortLived
		rows[i].long = s.LongLived
		rows[i].subP = s.SubSecProportion()
		rows[i].shortP = s.ShortProportion()
		rows[i].longP = s.LongProportion()
	}
	t.row("<1s short flows",
		fmt.Sprintf("%d (%s)", rows[0].sub, pct(rows[0].subP)),
		fmt.Sprintf("%d (%s)", rows[1].sub, pct(rows[1].subP)),
		"31614 (99.8%)", "7937 (93.5%)")
	t.row(">1s short flows",
		fmt.Sprintf("%d", rows[0].over), fmt.Sprintf("%d", rows[1].over),
		"63 (0.2%)", "549 (6.5%)")
	t.row("short-lived",
		fmt.Sprintf("%d (%s)", rows[0].short, pct(rows[0].shortP)),
		fmt.Sprintf("%d (%s)", rows[1].short, pct(rows[1].shortP)),
		"31677 (74.4%)", "8486 (93.8%)")
	t.row("long-lived",
		fmt.Sprintf("%d (%s)", rows[0].long, pct(rows[0].longP)),
		fmt.Sprintf("%d (%s)", rows[1].long, pct(rows[1].longP)),
		"10898 (25.6%)", "560 (6.2%)")
	return Result{ID: "table3", Title: "TCP short-lived vs long-lived flows", Text: t.String()}, nil
}

// Fig8FlowDurations renders the log-scale histogram of Y1 short-lived
// flow durations.
func (r *Runner) Fig8FlowDurations() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep := a.FlowAnalysis()
	var b strings.Builder
	maxCount := 0
	for _, bk := range rep.DurationHistogram {
		if bk.Count > maxCount {
			maxCount = bk.Count
		}
	}
	for _, bk := range rep.DurationHistogram {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", bk.Count*50/maxCount)
		}
		fmt.Fprintf(&b, "%12.4fs - %12.4fs %6d %s\n", bk.Lo, bk.Hi, bk.Count, bar)
	}
	b.WriteString("\nPaper (Fig. 8): the mass of short-lived flows sits well below one second.\n")
	return Result{ID: "fig8", Title: "Y1 short-lived flow duration histogram (log bins)", Text: b.String()}, nil
}

// Fig9RejectSequence prints a concrete rejected-backup packet exchange
// straight from the Y1 trace.
func (r *Runner) Fig9RejectSequence() (Result, error) {
	tr, err := r.Trace(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	net := topology.Build()
	o5, _ := net.Outstation("O5")
	// Only the rejected backup channel: O5 refuses the C1 side.
	rejecting := net.ServerAddr(o5.Behavior.RejectBackupFrom)
	var b strings.Builder
	shown := 0
	for _, rec := range tr.Records {
		if rec.Src.Addr() != rejecting && rec.Dst.Addr() != rejecting {
			continue
		}
		if rec.Src.Addr() != o5.Addr && rec.Dst.Addr() != o5.Addr {
			continue
		}
		dir := "server->outstation"
		if rec.Src.Addr() == o5.Addr {
			dir = "outstation->server"
		}
		what := flagDesc(rec.Flags)
		if len(rec.Payload) > 0 && rec.Payload[0] == 0x68 {
			what += " + IEC104 APDU"
		}
		fmt.Fprintf(&b, "%s  %-19s %s\n", rec.Time.Format("15:04:05.000"), dir, what)
		shown++
		if shown >= 10 {
			break
		}
	}
	b.WriteString("\nPaper (Fig. 9): the outstation accepts TCP, receives the server's TESTFR\n" +
		"keep-alive and resets the backup connection; the server retries forever.\n")
	return Result{ID: "fig9", Title: "Outlier behaviour: rejected backup connections", Text: b.String()}, nil
}

func flagDesc(f uint8) string {
	t := pcap.TCP{Flags: f}
	if s := t.FlagString(); s != "" {
		return s
	}
	return "(none)"
}
