package experiments

import (
	"fmt"
	"strings"

	"uncharted/internal/iec104"
	"uncharted/internal/physical"
	"uncharted/internal/topology"
)

// syncStation is the outstation whose generator performs the Fig. 20
// synchronisation (scadasim schedules it on O29).
const syncStation = "O29"

// stationSeries finds the first series of one physical kind at a
// station by joining analyzer output with the topology's semantics.
func (r *Runner) stationSeries(year topology.Year, station topology.OutstationID, kind topology.PointKind) (*physical.Series, error) {
	a, err := r.Analyzer(year)
	if err != nil {
		return nil, err
	}
	net := topology.Build()
	for _, p := range net.Points(station, year) {
		if p.Kind != kind {
			continue
		}
		if s, ok := a.Physical().Get(physical.SeriesKey{Station: string(station), IOA: p.IOA}); ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("experiments: no %s series for %s in %v", kind, station, year)
}

// setpointSeries collects every command-direction setpoint series.
func (r *Runner) setpointSeries(year topology.Year) ([]*physical.Series, error) {
	a, err := r.Analyzer(year)
	if err != nil {
		return nil, err
	}
	var out []*physical.Series
	for _, s := range a.Physical().All() {
		if s.Command && s.Type == physical.IEC104Type(iec104.CSeNc) {
			out = append(out, s)
		}
	}
	return out, nil
}

// Fig18UnmetLoad detects the scripted load-loss incident from the
// extracted frequency and power series.
func (r *Runner) Fig18UnmetLoad() (Result, error) {
	freq, err := r.stationSeries(topology.Y1, syncStation, topology.KindFrequency)
	if err != nil {
		// Fall back to any generator station's frequency point.
		freq, err = r.firstSeriesOfKind(topology.Y1, topology.KindFrequency)
		if err != nil {
			return Result{}, err
		}
	}
	sps, err := r.setpointSeries(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	events := physical.DetectUnmetLoad(freq, physical.Views(sps...), 60, 0.01)
	var b strings.Builder
	fmt.Fprintf(&b, "Frequency series %s: %d samples\n", freq.Key, len(freq.Samples))
	fmt.Fprintf(&b, "Detected %d frequency excursion(s):\n", len(events))
	for _, ev := range events {
		fmt.Fprintf(&b, "  %s .. %s  peak=%.4f Hz  AGC reduced=%t restored=%t\n",
			ev.Start.Format("15:04:05"), ev.End.Format("15:04:05"),
			ev.PeakFrequency, ev.AGCReduced, ev.AGCRestored)
	}
	// Normalized-variance ranking: the fluctuating series float to
	// the top, the way §6.4 shortlists interesting behaviour.
	a, _ := r.Analyzer(topology.Y1)
	ranked := a.Physical().Ranked(20)
	fmt.Fprintf(&b, "\nTop normalized-variance series:\n")
	for i, s := range ranked {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  %-12s type=%s  nvar=%.4g  samples=%d\n",
			s.Key, s.Type.Acronym(), s.NormalizedVariance(), len(s.Samples))
	}
	b.WriteString("\nPaper (Fig. 18): most voltages sit at nominal; power fluctuates during the\n" +
		"unmet-load incident; the frequency rises until AGC pulls generation back.\n")
	return Result{ID: "fig18", Title: "Voltage and active power fluctuations (unmet load)", Text: b.String()}, nil
}

func (r *Runner) firstSeriesOfKind(year topology.Year, kind topology.PointKind) (*physical.Series, error) {
	net := topology.Build()
	for _, o := range net.OutstationsIn(year) {
		if s, err := r.stationSeries(year, o.ID, kind); err == nil {
			return s, nil
		}
	}
	return nil, fmt.Errorf("experiments: no %s series found in %v", kind, year)
}

// Fig19AGCResponse correlates AGC setpoint commands with generator
// output.
func (r *Runner) Fig19AGCResponse() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	sps, err := r.setpointSeries(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	if len(sps) == 0 {
		return Result{}, fmt.Errorf("experiments: no AGC setpoint series")
	}
	net := topology.Build()
	var b strings.Builder
	fmt.Fprintf(&b, "AGC setpoint series observed: %d\n\n", len(sps))
	shown := 0
	for _, sp := range sps {
		station := topology.OutstationID(sp.Key.Station)
		var power *physical.Series
		for _, p := range net.Points(station, topology.Y1) {
			if p.Kind == topology.KindActivePower {
				if s, ok := a.Physical().Get(physical.SeriesKey{Station: sp.Key.Station, IOA: p.IOA}); ok {
					power = s
				}
				break
			}
		}
		if power == nil || len(power.Samples) < 10 || len(sp.Samples) < 3 {
			continue
		}
		resp, err := physical.CorrelateAGC(sp.Key.Station, sp, power, 30)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "  %-4s setpoints=%d power-samples=%d  corr=%.3f at lag=%d samples\n",
			sp.Key.Station, len(sp.Samples), len(power.Samples), resp.Correlation, resp.BestLag)
		shown++
	}
	if shown == 0 {
		return Result{}, fmt.Errorf("experiments: no correlatable AGC station")
	}
	b.WriteString("\nPaper (Fig. 19): generator output tracks the AGC command staircase with a\n" +
		"short ramp delay.\n")
	return Result{ID: "fig19", Title: "AGC commands and generator response", Text: b.String()}, nil
}

// Fig20GeneratorSync prints the synchronisation sequence extracted
// from the trace.
func (r *Runner) Fig20GeneratorSync() (Result, error) {
	volt, err := r.stationSeries(topology.Y1, syncStation, topology.KindVoltage)
	if err != nil {
		return Result{}, err
	}
	status, err := r.stationSeries(topology.Y1, syncStation, topology.KindStatus)
	if err != nil {
		return Result{}, err
	}
	power, err := r.stationSeries(topology.Y1, syncStation, topology.KindActivePower)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Station %s: voltage=%s (%d samples), breaker=%s, power=%s\n",
		syncStation, volt.Key, len(volt.Samples), status.Key, power.Key)
	// Render the phases: first/last voltage, breaker transition time,
	// first power flow.
	v0 := volt.Samples[0].V
	vN := volt.Samples[len(volt.Samples)-1].V
	fmt.Fprintf(&b, "Voltage: %.1f kV -> %.1f kV\n", v0, vN)
	for i := 1; i < len(status.Samples); i++ {
		if status.Samples[i].V != status.Samples[i-1].V {
			fmt.Fprintf(&b, "Breaker: %v -> %v at %s\n",
				status.Samples[i-1].V, status.Samples[i].V,
				status.Samples[i].T.Format("15:04:05"))
		}
	}
	for _, s := range power.Samples {
		if s.V > 2 {
			fmt.Fprintf(&b, "Power flow begins at %s (%.1f MW)\n", s.T.Format("15:04:05"), s.V)
			break
		}
	}
	b.WriteString("\nPaper (Fig. 20): terminal voltage ramps 0 -> nominal while the breaker is\n" +
		"open and no power flows; the breaker closes (status 0 -> 2); active power\n" +
		"then ramps up and reactive power settles positive or negative.\n")
	return Result{ID: "fig20", Title: "Generator synchronisation sequence", Text: b.String()}, nil
}

// Fig21Signature runs the activation signature machine over the
// extracted series.
func (r *Runner) Fig21Signature() (Result, error) {
	volt, err := r.stationSeries(topology.Y1, syncStation, topology.KindVoltage)
	if err != nil {
		return Result{}, err
	}
	status, err := r.stationSeries(topology.Y1, syncStation, topology.KindStatus)
	if err != nil {
		return Result{}, err
	}
	power, err := r.stationSeries(topology.Y1, syncStation, topology.KindActivePower)
	if err != nil {
		return Result{}, err
	}
	events := physical.DetectSync(syncStation, volt, status, power, physical.DefaultSyncConfig())
	var b strings.Builder
	fmt.Fprintf(&b, "Signature machine over %s: %d activation(s)\n", syncStation, len(events))
	for _, ev := range events {
		fmt.Fprintf(&b, "  ramp=%s breaker=%s power=%s nominal=%.1fkV compliant=%t\n",
			ev.RampStart.Format("15:04:05"), ev.BreakerClose.Format("15:04:05"),
			ev.PowerStart.Format("15:04:05"), ev.NominalVoltage, ev.Compliant)
	}
	b.WriteString("\nPaper (Fig. 21): idle -> voltage ramp -> breaker close -> power flow; the\n" +
		"machine doubles as a whitelist for future substation activations.\n")
	return Result{ID: "fig21", Title: "Power system behaviour signature", Text: b.String()}, nil
}
