// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) from synthesized captures: it runs the
// scadasim simulator for both capture years, feeds the traces through
// the core analysis pipeline, and renders paper-vs-measured reports.
// cmd/benchtables and the repository-level benchmarks both drive this
// package, and EXPERIMENTS.md is generated from its output.
package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// Result is one regenerated experiment.
type Result struct {
	ID    string // "table3", "fig13", ...
	Title string
	Text  string // rendered report, paper-vs-measured
}

// Runner lazily generates the two yearly captures and their analyses.
type Runner struct {
	// Scale shrinks the default capture durations (1 = the default
	// laptop scale: 40 min Y1 / 15 min Y2, the paper's 8:3 ratio).
	Scale float64
	Seed  int64

	y1, y2       *core.Analyzer
	trY1, trY2   *scadasim.Trace
	netY1, netY2 *topology.Network
}

// NewRunner returns a Runner at the given scale (values in (0,1]
// shrink the capture; 0 means 1.0).
func NewRunner(scale float64, seed int64) *Runner {
	if scale <= 0 {
		scale = 1
	}
	return &Runner{Scale: scale, Seed: seed}
}

func (r *Runner) config(year topology.Year) scadasim.Config {
	cfg := scadasim.DefaultConfig(year, r.Seed+int64(year))
	cfg.Duration = time.Duration(float64(cfg.Duration) * r.Scale)
	if cfg.Duration < 2*time.Minute {
		cfg.Duration = 2 * time.Minute
	}
	if cfg.CyclePeriod > cfg.Duration/3 {
		cfg.CyclePeriod = cfg.Duration / 3
	}
	return cfg
}

// Trace returns (generating on first use) the year's synthetic trace.
func (r *Runner) Trace(year topology.Year) (*scadasim.Trace, error) {
	if year == topology.Y1 && r.trY1 != nil {
		return r.trY1, nil
	}
	if year == topology.Y2 && r.trY2 != nil {
		return r.trY2, nil
	}
	sim, err := scadasim.New(r.config(year))
	if err != nil {
		return nil, err
	}
	tr, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if year == topology.Y1 {
		r.trY1, r.netY1 = tr, sim.Network()
	} else {
		r.trY2, r.netY2 = tr, sim.Network()
	}
	return tr, nil
}

// Analyzer returns (building on first use) the year's full analysis.
func (r *Runner) Analyzer(year topology.Year) (*core.Analyzer, error) {
	if year == topology.Y1 && r.y1 != nil {
		return r.y1, nil
	}
	if year == topology.Y2 && r.y2 != nil {
		return r.y2, nil
	}
	tr, err := r.Trace(year)
	if err != nil {
		return nil, err
	}
	var net *topology.Network
	if year == topology.Y1 {
		net = r.netY1
	} else {
		net = r.netY2
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		return nil, err
	}
	a := core.NewAnalyzer(core.NamesFromTopology(net))
	if err := a.ReadPCAP(&buf); err != nil {
		return nil, err
	}
	if year == topology.Y1 {
		r.y1 = a
	} else {
		r.y2 = a
	}
	return a, nil
}

// experimentFns enumerates every regenerable experiment in paper
// order.
func (r *Runner) experimentFns() []struct {
	id string
	fn func() (Result, error)
} {
	return []struct {
		id string
		fn func() (Result, error)
	}{
		{"table1", r.Table1Scale},
		{"fig6", r.Fig6Topology},
		{"table2", r.Table2Changes},
		{"fig7", r.Fig7Compliance},
		{"table3", r.Table3Flows},
		{"fig8", r.Fig8FlowDurations},
		{"fig9", r.Fig9RejectSequence},
		{"fig10", r.Fig10Clusters},
		{"fig11", r.Fig11ClusterProfiles},
		{"table4", r.Table4Tokens},
		{"table5", r.Table5TypeIDs},
		{"fig12", r.Fig12ExpectedChains},
		{"fig13", r.Fig13ChainSizes},
		{"fig14", r.Fig14AbnormalChain},
		{"fig15", r.Fig15InterrogationChain},
		{"fig16", r.Fig16SwitchoverChain},
		{"table6", r.Table6Classification},
		{"fig17", r.Fig17TypeDistribution},
		{"table7", r.Table7TypeIDs},
		{"table8", r.Table8Semantics},
		{"fig18", r.Fig18UnmetLoad},
		{"fig19", r.Fig19AGCResponse},
		{"fig20", r.Fig20GeneratorSync},
		{"fig21", r.Fig21Signature},
	}
}

// IDs lists the available experiment identifiers.
func (r *Runner) IDs() []string {
	var out []string
	for _, e := range r.experimentFns() {
		out = append(out, e.id)
	}
	return out
}

// Run regenerates one experiment by id.
func (r *Runner) Run(id string) (Result, error) {
	for _, e := range r.experimentFns() {
		if e.id == id {
			return e.fn()
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		id, strings.Join(r.IDs(), ", "))
}

// RunAll regenerates every experiment in paper order.
func (r *Runner) RunAll() ([]Result, error) {
	var out []Result
	for _, e := range r.experimentFns() {
		res, err := e.fn()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// --- small rendering helpers shared by the experiment files ---

type table struct {
	b bytes.Buffer
}

func (t *table) row(cols ...string) {
	for i, c := range cols {
		if i > 0 {
			t.b.WriteString("  ")
		}
		fmt.Fprintf(&t.b, "%-16s", c)
	}
	t.b.WriteByte('\n')
}

func (t *table) String() string { return t.b.String() }

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
