package experiments

import (
	"fmt"
	"strings"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/topology"
)

// findChain locates one logical connection's chain by names.
func findChain(rep core.MarkovReport, server, outstation string) *core.ConnChain {
	for i := range rep.Chains {
		if rep.Chains[i].Server == server && rep.Chains[i].Outstation == outstation {
			return &rep.Chains[i]
		}
	}
	return nil
}

// Fig12ExpectedChains shows the two simplest expected patterns: a
// healthy primary (I36/S loop) and a healthy secondary (U16/U32 loop).
func (r *Runner) Fig12ExpectedChains() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep := a.MarkovChains()
	var b strings.Builder
	// Healthy primary and secondary: O4 is the Type 2 exemplar; its
	// server pair comes from the topology (C3/C4).
	net := topology.Build()
	o4, _ := net.Outstation("O4")
	if cc := findChain(rep, string(o4.Servers[0]), "O4"); cc != nil {
		fmt.Fprintf(&b, "Primary connection %s-O4 (nodes=%d edges=%d):\n  %s\n\n",
			o4.Servers[0], cc.Chain.Nodes(), cc.Chain.Edges(), cc.Chain)
	}
	if cc := findChain(rep, string(o4.Servers[1]), "O4"); cc != nil {
		fmt.Fprintf(&b, "Secondary connection %s-O4 (nodes=%d edges=%d):\n  %s\n",
			o4.Servers[1], cc.Chain.Nodes(), cc.Chain.Edges(), cc.Chain)
	}
	b.WriteString("\nPaper (Fig. 12): primary = I APDUs acknowledged by S; secondary = U16/U32\n" +
		"keep-alive ping-pong with near-zero probability of repeated tokens\n" +
		"(repeats turned out to be TCP retransmissions).\n")
	return Result{ID: "fig12", Title: "Expected primary/secondary Markov chains", Text: b.String()}, nil
}

// Fig13ChainSizes renders the (nodes, edges) scatter and its three
// regions.
func (r *Runner) Fig13ChainSizes() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep := a.MarkovChains()
	var b strings.Builder
	var t table
	t.row("Connection", "Nodes", "Edges", "Region")
	for _, cc := range rep.Chains {
		t.row(cc.Server+"-"+cc.Outstation,
			fmt.Sprintf("%d", cc.Chain.Nodes()),
			fmt.Sprintf("%d", cc.Chain.Edges()),
			cc.Cluster.String())
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nRegions: point(1,1)=%d connections, square=%d, ellipse=%d\n",
		len(rep.Point11), len(rep.Square), len(rep.Ellipse))
	fmt.Fprintf(&b, "point(1,1) members: %s\n", strings.Join(rep.Point11, ", "))
	fmt.Fprintf(&b, "ellipse members (all contain I100): %s\n", strings.Join(rep.Ellipse, ", "))
	b.WriteString("\nPaper: point(1,1) = {C2-O28, C2-O24, C1-O7, C1-O9, C1-O6, C1-O8, C1-O35,\n" +
		"C2-O30, C1-O15, C1-O5}; every ellipse member contains the interrogation I100.\n")
	return Result{ID: "fig13", Title: "Markov chain sizes per connection", Text: b.String()}, nil
}

// Fig14AbnormalChain prints a point-(1,1) chain.
func (r *Runner) Fig14AbnormalChain() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep := a.MarkovChains()
	cc := findChain(rep, "C1", "O5")
	if cc == nil {
		return Result{}, fmt.Errorf("experiments: C1-O5 chain missing")
	}
	txt := fmt.Sprintf("C1-O5: tokens=%v nodes=%d edges=%d chain: %s\n\n"+
		"Paper (Fig. 14): repeated U16 without the U32 acknowledgement — the\n"+
		"outstation resets the TCP connection instead of answering keep-alives.\n",
		cc.Chain.Tokens(), cc.Chain.Nodes(), cc.Chain.Edges(), cc.Chain)
	return Result{ID: "fig14", Title: "Abnormal (1,1) communication pattern", Text: txt}, nil
}

// Fig15InterrogationChain prints an ellipse chain with the activation
// sequence U1 -> U2 -> I100 -> data.
func (r *Runner) Fig15InterrogationChain() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep := a.MarkovChains()
	for _, cc := range rep.Chains {
		if cc.Cluster != markov.ClusterEllipse {
			continue
		}
		ch := cc.Chain
		// Show the canonical Fig. 15 pattern: activation directly
		// followed by the interrogation (stations that emit an
		// end-of-init first are equally valid but less illustrative).
		if ch.Prob(tok("U1"), tok("U2")) == 0 || ch.Prob(tok("U2"), tok("I100")) == 0 {
			continue
		}
		txt := fmt.Sprintf("%s-%s (nodes=%d edges=%d):\n  %s\n\n"+
			"Key transitions: P(U2|U1)=%.2f  P(I100|U2)=%.2f\n\n"+
			"Paper (Fig. 15): STARTDT act/con, then the I100 interrogation, then the\n"+
			"outstation reports every IOA — a burst of previously-unseen I types.\n",
			cc.Server, cc.Outstation, ch.Nodes(), ch.Edges(), ch,
			ch.Prob(tok("U1"), tok("U2")), ch.Prob(tok("U2"), tok("I100")))
		return Result{ID: "fig15", Title: "Interrogation chain (ellipse member)", Text: txt}, nil
	}
	return Result{}, fmt.Errorf("experiments: no ellipse chain with STARTDT found")
}

// Fig16SwitchoverChain prints a promoted secondary: keep-alives, then
// activation and data.
func (r *Runner) Fig16SwitchoverChain() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep := a.MarkovChains()
	cc := findChain(rep, "C2", "O29")
	if cc == nil {
		return Result{}, fmt.Errorf("experiments: C2-O29 chain missing")
	}
	ch := cc.Chain
	txt := fmt.Sprintf("C2-O29 (nodes=%d edges=%d):\n  %s\n\n"+
		"Keep-alive phase present: U16=%t U32=%t; promotion: U1=%t U2=%t I100=%t\n\n"+
		"Paper (Fig. 16): the same connection shows secondary keep-alives (U16/U32)\n"+
		"followed by STARTDT, I100 and regular I reporting — a server switchover.\n",
		ch.Nodes(), ch.Edges(), ch,
		ch.Has(tok("U16")), ch.Has(tok("U32")),
		ch.Has(tok("U1")), ch.Has(tok("U2")), ch.Has(tok("I100")))
	return Result{ID: "fig16", Title: "Switchover chain C2-O29", Text: txt}, nil
}

// Table6Classification classifies every outstation (merging both
// years, as the paper does across its captures).
func (r *Runner) Table6Classification() (Result, error) {
	classes, dist, err := r.mergedClassification()
	if err != nil {
		return Result{}, err
	}
	var t table
	t.row("Outstation", "Type")
	for _, c := range classes {
		t.row(c.Outstation, fmt.Sprintf("Type%d", c.Type))
	}
	txt := t.String() + fmt.Sprintf("\nDistribution (types 1-8): %v\n", dist[1:]) +
		"\nPaper (Table 6): 1 no-secondary, 2 ideal, 3 U-only backups, 4 I to both\n" +
		"servers, 5 single server I+U, 6 refused secondary, 7 reset backups, 8 switchover.\n"
	return Result{ID: "table6", Title: "Outstation classification", Text: txt}, nil
}

// Fig17TypeDistribution reports the class shares.
func (r *Runner) Fig17TypeDistribution() (Result, error) {
	classes, dist, err := r.mergedClassification()
	if err != nil {
		return Result{}, err
	}
	total := len(classes)
	var t table
	t.row("Type", "Count", "Share", "Paper note")
	notes := map[int]string{
		3: "most common (34.3%)",
		4: "second most common",
		7: "~1/4 of all backups",
	}
	for ty := 1; ty <= 8; ty++ {
		t.row(fmt.Sprintf("Type%d", ty), fmt.Sprintf("%d", dist[ty]),
			pct(float64(dist[ty])/float64(total)), notes[ty])
	}
	return Result{ID: "fig17", Title: "Outstation type distribution", Text: t.String()}, nil
}

// mergedClassification classifies outstations over both years'
// connections.
func (r *Runner) mergedClassification() ([]markov.OutstationClass, [9]int, error) {
	var summaries []markov.ConnSummary
	for _, year := range []topology.Year{topology.Y1, topology.Y2} {
		a, err := r.Analyzer(year)
		if err != nil {
			return nil, [9]int{}, err
		}
		rep := a.MarkovChains()
		for _, cc := range rep.Chains {
			summaries = append(summaries, markov.ConnSummary{
				Server: cc.Server, Outstation: cc.Outstation, Chain: cc.Chain,
			})
		}
	}
	classes := markov.ClassifyAll(summaries)
	return classes, markov.TypeDistribution(classes), nil
}

// tok parses a token literal, panicking on programmer error.
func tok(s string) iec104.Token {
	t, err := iec104.ParseToken(s)
	if err != nil {
		panic(err)
	}
	return t
}
