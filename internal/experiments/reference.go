package experiments

import (
	"fmt"
	"strings"

	"uncharted/internal/iec104"
	"uncharted/internal/topology"
)

// Table1Scale renders the paper's background comparison of transmission
// and distribution systems (§2, Table 1) alongside what the simulated
// bulk system models.
func (r *Runner) Table1Scale() (Result, error) {
	var t table
	t.row("", "Transmission", "Distribution")
	t.row("Power [W]", "10^9", "10^6")
	t.row("Area [km^2]", "> 4.67 million", "> 10600")
	t.row("Voltage [kV]", "> 110", "< 34.5")
	net := topology.Build()
	gens := 0
	for _, o := range net.Outstations() {
		if o.HasGenerator && o.SendsIFormat() {
			gens++
		}
	}
	txt := t.String() + fmt.Sprintf("\nSimulated bulk system: %d substations, %d generator-backed RTUs,\n"+
		"nominal voltage 130 kV, nominal frequency 60 Hz — transmission-scale per Table 1.\n",
		len(net.Substations), gens)
	return Result{ID: "table1", Title: "Transmission vs distribution scale (background)", Text: txt}, nil
}

// Table4Tokens renders the APDU token alphabet of §6.3.1 and verifies
// it against live traffic: every token observed in the Y1 capture must
// belong to the alphabet.
func (r *Runner) Table4Tokens() (Result, error) {
	var t table
	t.row("Token", "APDU", "Description")
	t.row("S", "S", "Ack of I APDUs")
	t.row("U1", "STARTDT act", "Start sending I APDUs")
	t.row("U2", "STARTDT con", "Ack of STARTDT")
	t.row("U4", "STOPDT act", "Stop sending I APDUs")
	t.row("U8", "STOPDT con", "Ack of STOPDT")
	t.row("U16", "TESTFR act", "Test status of connection")
	t.row("U32", "TESTFR con", "Ack of TESTFR")
	t.row("I<code>", "Variable type", "Sensor and control values")

	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	observed := map[string]bool{}
	for _, key := range a.ConnKeys() {
		for _, tok := range a.TokenStream(key) {
			observed[tok.String()] = true
		}
	}
	var toks []string
	for s := range observed {
		toks = append(toks, s)
	}
	// Round-trip each observed token through the parser.
	bad := 0
	for _, s := range toks {
		if _, err := iec104.ParseToken(s); err != nil {
			bad++
		}
	}
	txt := t.String() + fmt.Sprintf("\nObserved %d distinct tokens in Y1 traffic; %d outside the alphabet.\n",
		len(toks), bad)
	return Result{ID: "table4", Title: "APDU token description", Text: txt}, nil
}

// Table5TypeIDs renders the 54 type identifications IEC 104 supports
// (of IEC 101's 127), marking the ones observed in traffic.
func (r *Runner) Table5TypeIDs() (Result, error) {
	seen := map[iec104.TypeID]bool{}
	for _, year := range []topology.Year{topology.Y1, topology.Y2} {
		a, err := r.Analyzer(year)
		if err != nil {
			return Result{}, err
		}
		for _, s := range a.TypeDistribution() {
			seen[s.Type] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-11s %-4s %s\n", "Code", "Acronym", "Seen", "Description")
	observed := 0
	for _, t := range iec104.SupportedTypeIDs() {
		mark := ""
		if seen[t] {
			mark = "*"
			observed++
		}
		fmt.Fprintf(&b, "%-6d %-11s %-4s %s\n", uint8(t), t.Acronym(), mark, t.Description())
	}
	fmt.Fprintf(&b, "\n%d of 54 supported type IDs observed (paper: 13).\n", observed)
	return Result{ID: "table5", Title: "IEC 104 type identifications", Text: b.String()}, nil
}
