package experiments

import (
	"fmt"
	"strings"

	"uncharted/internal/core"
	"uncharted/internal/topology"
)

// clusterSeed keeps Fig. 10/11 deterministic.
const clusterSeed = 1202

// Fig10Clusters regenerates the K-means++ clustering of Y1 sessions
// with the paper's K=5, including the model-selection sweep and the
// PCA projection extents.
func (r *Runner) Fig10Clusters() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep, err := a.ClusterSessions(5, clusterSeed)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	// The §6.3 feature selection: ten candidates scored individually
	// by silhouette, five survive.
	if scores, err := a.SelectFeatures(clusterSeed); err == nil {
		b.WriteString("Feature selection (10 candidates -> 5, per-feature silhouette):\n")
		for _, s := range scores {
			mark := " "
			if s.Selected {
				mark = "*"
			}
			fmt.Fprintf(&b, "  %s %-14s %.3f\n", mark, s.Name, s.Silhouette)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Sessions clustered: %d   K=5 (paper: elbow/variance/silhouette all suggest K=5)\n", len(rep.Features))
	fmt.Fprintf(&b, "SSE=%.1f  silhouette=%.3f\n\nModel selection sweep:\n", rep.SSE, rep.Sil)
	for _, e := range rep.Elbow {
		fmt.Fprintf(&b, "  K=%d  SSE=%9.1f  explained=%.3f  silhouette=%.3f\n",
			e.K, e.SSE, e.Explained, e.Silhouette)
	}
	fmt.Fprintf(&b, "\nCluster sizes: %v\n", rep.Sizes)
	fmt.Fprintf(&b, "Outlier cluster members (paper's cluster 0 was {C2>O30, C4<->O22}): %s\n",
		strings.Join(rep.Outliers, ", "))
	// A coarse ASCII scatter of the 2-D PCA projection.
	b.WriteString("\nPCA projection (first two components):\n")
	b.WriteString(asciiScatter(rep.Projected, rep.Assign, 60, 16))
	return Result{ID: "fig10", Title: "PCA of clustered IEC 104 sessions (Y1)", Text: b.String()}, nil
}

// Fig11ClusterProfiles interprets each cluster by its mean features,
// mirroring the paper's five behaviours.
func (r *Runner) Fig11ClusterProfiles() (Result, error) {
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		return Result{}, err
	}
	rep, err := a.ClusterSessions(5, clusterSeed)
	if err != nil {
		return Result{}, err
	}
	type agg struct {
		n                   int
		dt, num, pi, ps, pu float64
	}
	aggs := make([]agg, rep.K)
	for i, f := range rep.Features {
		c := rep.Assign[i]
		aggs[c].n++
		aggs[c].dt += f.DeltaT
		aggs[c].num += f.Num
		aggs[c].pi += f.PctI
		aggs[c].ps += f.PctS
		aggs[c].pu += f.PctU
	}
	var t table
	t.row("Cluster", "Sessions", "meanDt[s]", "meanPkts", "%I", "%S", "%U", "Interpretation")
	total := len(rep.Features)
	for c, ag := range aggs {
		if ag.n == 0 {
			continue
		}
		n := float64(ag.n)
		t.row(
			fmt.Sprintf("%d (%s)", c, pct(float64(ag.n)/float64(total))),
			fmt.Sprintf("%d", ag.n),
			fmt.Sprintf("%.2f", ag.dt/n),
			fmt.Sprintf("%.0f", ag.num/n),
			pct(ag.pi/n), pct(ag.ps/n), pct(ag.pu/n),
			interpretCluster(ag.dt/n, ag.pi/n, ag.ps/n, ag.pu/n),
		)
	}
	txt := t.String() + "\nPaper (Fig. 11): (0) extreme inter-arrival outliers, (1) spontaneous-I heavy,\n" +
		"(2) average I reporters, (3) server S-format acks, (4) backup keep-alives.\n"
	return Result{ID: "fig11", Title: "Communication patterns per cluster", Text: txt}, nil
}

func interpretCluster(dt, pi, ps, pu float64) string {
	switch {
	case dt > 60:
		return "long-interval outlier"
	case pu > 0.6:
		return "backup keep-alives"
	case ps > 0.6:
		return "server acknowledgements"
	case pi > 0.9:
		return "I-format reporters"
	default:
		return "mixed/average"
	}
}

// asciiScatter renders projected points with cluster digits.
func asciiScatter(pts [][]float64, assign []int, w, h int) string {
	if len(pts) == 0 {
		return "(no points)\n"
	}
	minX, maxX := pts[0][0], pts[0][0]
	minY, maxY := pts[0][1], pts[0][1]
	for _, p := range pts {
		if p[0] < minX {
			minX = p[0]
		}
		if p[0] > maxX {
			maxX = p[0]
		}
		if p[1] < minY {
			minY = p[1]
		}
		if p[1] > maxY {
			maxY = p[1]
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	for i, p := range pts {
		x := int((p[0] - minX) / (maxX - minX) * float64(w-1))
		y := int((p[1] - minY) / (maxY - minY) * float64(h-1))
		grid[h-1-y][x] = byte('0' + assign[i]%10)
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

var _ = core.IEC104Port // keep the core import for documentation links
