package experiments

import (
	"fmt"
	"strings"

	"uncharted/internal/topology"
)

// Fig6Topology renders the two-year network map: servers, substations,
// outstations with per-year IOA counts and up/down arrows.
func (r *Runner) Fig6Topology() (Result, error) {
	net := topology.Build()
	diff := topology.ComputeDiff(net)

	var b strings.Builder
	fmt.Fprintf(&b, "Control servers: ")
	for i, s := range net.Servers {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s (%s)", s.ID, s.Addr)
	}
	b.WriteString("\n\n")
	for _, sub := range net.Substations {
		gen := "transmission-only"
		if sub.HasGenerator {
			gen = "generator"
		}
		fmt.Fprintf(&b, "%-4s [%s]\n", sub.ID, gen)
		for _, id := range sub.Outstations {
			o, _ := net.Outstation(id)
			status := ""
			switch {
			case o.PresentY1 && !o.PresentY2:
				status = " (removed in Y2)"
			case !o.PresentY1 && o.PresentY2:
				status = " (added in Y2)"
			}
			arrow := "="
			if o.PresentY1 && o.PresentY2 {
				switch {
				case o.IOACountY2 > o.IOACountY1:
					arrow = "up"
				case o.IOACountY2 < o.IOACountY1:
					arrow = "down"
				}
			}
			fmt.Fprintf(&b, "  %-4s servers=%s/%s IOAs Y1=%d Y2=%d [%s] %v%s\n",
				o.ID, o.Servers[0], o.Servers[1], o.IOACountY1, o.IOACountY2,
				arrow, o.ConnType, status)
		}
	}
	fmt.Fprintf(&b, "\nPaper:    27 substations, 58 outstations, 4 control servers\n")
	fmt.Fprintf(&b, "Measured: %d substations, %d outstations, %d control servers\n",
		len(net.Substations), len(net.Outstations()), len(net.Servers))
	fmt.Fprintf(&b, "Stability: outstations %d/%d (%s; paper 14/58 = 25%%), substations %d/%d (%s; paper 7/27 = 26%%)\n",
		len(diff.StableOutstations), diff.TotalOutstations, pct(diff.OutstationStability()),
		len(diff.StableSubstations), diff.TotalSubstations, pct(diff.SubstationStability()))
	return Result{ID: "fig6", Title: "IEC 104 network topology, Y1 vs Y2", Text: b.String()}, nil
}

// Table2Changes renders the added/removed outstation table with the
// operator's explanations.
func (r *Runner) Table2Changes() (Result, error) {
	diff := topology.ComputeDiff(topology.Build())
	var t table
	t.row("Outstation", "Added/Removed", "Description")
	for _, c := range diff.Added {
		t.row(string(c.Outstation), "Added", string(c.Reason))
	}
	for _, c := range diff.Removed {
		t.row(string(c.Outstation), "Removed", string(c.Reason))
	}
	txt := t.String() + fmt.Sprintf("\nPaper: 9 added (O50-O58), 7 removed (O2, O15, O20, O22, O28, O33, O38)\nMeasured: %d added, %d removed\n",
		len(diff.Added), len(diff.Removed))
	return Result{ID: "table2", Title: "Outstations added/removed between the years", Text: txt}, nil
}
