package experiments

import (
	"strings"
	"testing"
)

// sharedRunner keeps one small-scale runner for the whole test binary;
// the simulations dominate test time.
var sharedRunner = NewRunner(0.15, 5)

func TestRunAllProducesEveryExperiment(t *testing.T) {
	results, err := sharedRunner.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	want := sharedRunner.IDs()
	if len(results) != len(want) {
		t.Fatalf("%d results, want %d", len(results), len(want))
	}
	for i, res := range results {
		if res.ID != want[i] {
			t.Errorf("result %d id %q, want %q", i, res.ID, want[i])
		}
		if res.Title == "" || len(res.Text) < 40 {
			t.Errorf("%s: empty or trivial output (%d bytes)", res.ID, len(res.Text))
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := sharedRunner.Run("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable3ContainsPaperBaselines(t *testing.T) {
	res, err := sharedRunner.Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"31677 (74.4%)", "8486 (93.8%)", "short-lived", "long-lived"} {
		if !strings.Contains(res.Text, needle) {
			t.Errorf("table3 output missing %q", needle)
		}
	}
}

func TestFig13NamesTheResetConnections(t *testing.T) {
	res, err := sharedRunner.Run("fig13")
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"C2-O30", "C1-O5", "point(1,1)", "ellipse"} {
		if !strings.Contains(res.Text, needle) {
			t.Errorf("fig13 output missing %q", needle)
		}
	}
}

func TestTable7ComparesAgainstPaper(t *testing.T) {
	res, err := sharedRunner.Run("table7")
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"I36", "I13", "65.1322%", "31.6959%"} {
		if !strings.Contains(res.Text, needle) {
			t.Errorf("table7 output missing %q", needle)
		}
	}
}

func TestFig21DetectsCompliantActivation(t *testing.T) {
	res, err := sharedRunner.Run("fig21")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "compliant=true") {
		t.Errorf("fig21 found no compliant activation:\n%s", res.Text)
	}
}

func TestFig18FindsExcursion(t *testing.T) {
	res, err := sharedRunner.Run("fig18")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Text, "Detected 0 frequency excursion") {
		t.Errorf("fig18 found no excursion:\n%s", res.Text)
	}
}

func TestScaleClamping(t *testing.T) {
	r := NewRunner(0, 1)
	if r.Scale != 1 {
		t.Fatalf("scale %v", r.Scale)
	}
	cfg := r.config(1)
	if cfg.Duration <= 0 {
		t.Fatal("bad duration")
	}
}
