package experiments

import (
	"fmt"
	"sort"
	"strings"

	"uncharted/internal/iec104"
	"uncharted/internal/topology"
)

// paperTable7 holds the paper's reported ASDU type shares.
var paperTable7 = map[iec104.TypeID]float64{
	36: 65.1322, 13: 31.6959, 9: 2.6960, 50: 0.2330, 3: 0.1427,
	5: 0.0893, 100: 0.0080, 103: 0.0011, 30: 0.0005, 70: 0.0005,
	31: 0.0005, 1: 0.0004, 7: 0.00004,
}

// Table7TypeIDs regenerates the ASDU type distribution over both
// years' traffic.
func (r *Runner) Table7TypeIDs() (Result, error) {
	counts := map[iec104.TypeID]int{}
	total := 0
	for _, year := range []topology.Year{topology.Y1, topology.Y2} {
		a, err := r.Analyzer(year)
		if err != nil {
			return Result{}, err
		}
		for _, s := range a.TypeDistribution() {
			counts[s.Type] += s.Count
			total += s.Count
		}
	}
	type row struct {
		t   iec104.TypeID
		n   int
		pct float64
	}
	var rows []row
	for t, n := range counts {
		rows = append(rows, row{t, n, 100 * float64(n) / float64(total)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })

	var t table
	t.row("TypeID", "Acronym", "Measured", "Paper")
	for _, rw := range rows {
		paper := "-"
		if p, ok := paperTable7[rw.t]; ok {
			paper = fmt.Sprintf("%.4f%%", p)
		}
		t.row(fmt.Sprintf("I%d", uint8(rw.t)), rw.t.Acronym(),
			fmt.Sprintf("%.4f%%", rw.pct), paper)
	}
	var top2 float64
	for _, rw := range rows {
		if rw.t == iec104.MMeTf || rw.t == iec104.MMeNc {
			top2 += rw.pct
		}
	}
	txt := t.String() + fmt.Sprintf("\nObserved %d of the 54 supported type IDs (paper: 13). "+
		"I36+I13 measured %.1f%% (paper 96.8%%).\n", len(rows), top2)
	return Result{ID: "table7", Title: "Observed ASDU typeID distribution", Text: txt}, nil
}

// paperTable8 maps type IDs to the paper's transmitting-station counts
// and physical symbols.
var paperTable8 = []struct {
	t        iec104.TypeID
	stations int
	symbols  string
}{
	{13, 20, "I,P,Q,U,Freq"}, {36, 13, "I,P,Q,U,Freq"}, {100, 9, "Inter(global)"},
	{3, 6, "P,Q,U,Status(0,1,2)"}, {31, 4, "Status(0,2)"}, {50, 4, "AGC-SP"},
	{1, 3, "Status(0)"}, {103, 3, "-"}, {70, 2, "-"}, {5, 1, "-"},
	{9, 1, "-"}, {7, 1, "-"}, {30, 1, "-"},
}

// Table8Semantics joins the measured per-type station counts with the
// physical symbols recovered from the topology's point semantics.
func (r *Runner) Table8Semantics() (Result, error) {
	// Station counts measured from traffic (both years merged).
	measured := map[iec104.TypeID]map[string]bool{}
	for _, year := range []topology.Year{topology.Y1, topology.Y2} {
		a, err := r.Analyzer(year)
		if err != nil {
			return Result{}, err
		}
		for t, stations := range a.TypeStations() {
			m, ok := measured[t]
			if !ok {
				m = map[string]bool{}
				measured[t] = m
			}
			for _, s := range stations {
				m[s] = true
			}
		}
	}
	// Symbols recovered by joining IOAs with the topology's semantics.
	net := topology.Build()
	symbols := map[iec104.TypeID]map[topology.PointKind]bool{}
	for _, o := range net.Outstations() {
		for _, year := range []topology.Year{topology.Y1, topology.Y2} {
			for _, p := range net.Points(o.ID, year) {
				m, ok := symbols[p.Type]
				if !ok {
					m = map[topology.PointKind]bool{}
					symbols[p.Type] = m
				}
				m[p.Kind] = true
			}
		}
	}

	var t table
	t.row("TypeID", "Stations(meas)", "Stations(paper)", "Symbols(meas)", "Symbols(paper)")
	for _, row := range paperTable8 {
		var syms []string
		for k := range symbols[row.t] {
			syms = append(syms, string(k))
		}
		sort.Strings(syms)
		symTxt := strings.Join(syms, ",")
		if symTxt == "" {
			symTxt = "-"
		}
		t.row(fmt.Sprintf("I%d", uint8(row.t)),
			fmt.Sprintf("%d", len(measured[row.t])),
			fmt.Sprintf("%d", row.stations),
			symTxt, row.symbols)
	}
	txt := t.String() + "\nI=current, P=active power, Q=reactive power, U=voltage, Freq=frequency,\n" +
		"Inter=interrogation, AGC-SP=AGC setpoint, Status=breaker state.\n"
	return Result{ID: "table8", Title: "ASDU typeID and physical measurement semantics", Text: txt}, nil
}
