package service

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
)

// Cache is the snapshot/query response cache: a mutex-guarded LRU of
// fully rendered HTTP responses keyed by (tenant, endpoint, snapshot
// version, raw query). Because the published snapshot's sequence
// number is part of the key, every newly published snapshot
// invalidates all of a tenant's hot entries at once — readers of the
// new snapshot miss, render once, and every subsequent read is served
// from memory without touching the analyzer. Entries hold immutable
// byte slices, so concurrent readers can never observe a torn
// response.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
}

// cacheEntry is one rendered response.
type cacheEntry struct {
	key   string
	etag  string
	ctype string
	body  []byte
}

// NewCache builds a cache holding at most max rendered responses;
// max <= 0 picks the 4096-entry default.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 4096
	}
	return &Cache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the entry for key, promoting it to most recently used.
func (c *Cache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts (or replaces) the entry for key, evicting from the LRU
// tail when over capacity.
func (c *Cache) put(key string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
}

// Len reports the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey builds the cache key and the strong ETag for one request.
func cacheKey(tenant, endpoint, version, rawQuery string) (key, etag string) {
	key = tenant + "\x00" + endpoint + "\x00" + version + "\x00" + rawQuery
	h := fnv.New64a()
	h.Write([]byte(key))
	return key, fmt.Sprintf("%q", fmt.Sprintf("%s-%s-%s-%016x", tenant, endpoint, version, h.Sum64()))
}

// recorder captures an inner handler's response for caching.
type recorder struct {
	hdr  http.Header
	code int
	body []byte
}

func newRecorder() *recorder { return &recorder{hdr: make(http.Header), code: http.StatusOK} }

func (r *recorder) Header() http.Header         { return r.hdr }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { r.body = append(r.body, p...); return len(p), nil }

// cached wraps a query handler with the snapshot cache. version must
// return a string that changes whenever the underlying data does —
// the engine's published snapshot sequence — so hot reads of the
// current snapshot are served straight from memory and every new
// snapshot starts a fresh generation. Only 200 responses to GET/HEAD
// are stored; If-None-Match requests matching the entry's ETag get
// 304. The X-Cache header says hit or miss, which is how cmd/loadgen
// measures the hit ratio from outside.
func (s *Service) cached(t *Tenant, endpoint string, version func() string, inner http.Handler) http.Handler {
	if s.cache == nil {
		return inner
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			inner.ServeHTTP(w, req)
			return
		}
		key, etag := cacheKey(t.name, endpoint, version(), req.URL.RawQuery)
		if e, ok := s.cache.get(key); ok {
			t.cacheHits.Inc()
			h := w.Header()
			h.Set("X-Cache", "hit")
			h.Set("ETag", e.etag)
			if e.ctype != "" {
				h.Set("Content-Type", e.ctype)
			}
			if req.Header.Get("If-None-Match") == e.etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Write(e.body)
			return
		}
		t.cacheMisses.Inc()
		rec := newRecorder()
		inner.ServeHTTP(rec, req)
		h := w.Header()
		for k, vv := range rec.hdr {
			h[k] = vv
		}
		h.Set("X-Cache", "miss")
		if rec.code == http.StatusOK {
			h.Set("ETag", etag)
			s.cache.put(key, &cacheEntry{
				key: key, etag: etag, ctype: rec.hdr.Get("Content-Type"), body: rec.body,
			})
		}
		w.WriteHeader(rec.code)
		w.Write(rec.body)
	})
}
