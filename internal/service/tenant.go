package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/historian"
	"uncharted/internal/obs"
	"uncharted/internal/pipeline"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// clusterSeed keeps tenant clustering deterministic across restarts,
// matching the single-engine commands.
const clusterSeed = 1202

// maxPartialBytes bounds one posted probe partial (the full Y1 era
// profile encodes to a few MB; 64 MB leaves room for much larger
// fleets without letting a stray client exhaust memory).
const maxPartialBytes = 64 << 20

// aggregator accumulates remote-probe partials for one tenant. Each
// probe's latest partial replaces its previous one, so probes can
// re-post rolling updates; the fleet view is MergePartials over the
// current set, which is commutative and associative, so arrival order
// never matters.
type aggregator struct {
	mu      sync.Mutex
	byProbe map[string]core.Partial
	ver     uint64
}

func newAggregator() *aggregator { return &aggregator{byProbe: make(map[string]core.Partial)} }

// put stores a probe's latest partial and returns the new version and
// probe count.
func (a *aggregator) put(probe string, p core.Partial) (ver uint64, probes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.byProbe[probe] = p
	a.ver++
	return a.ver, len(a.byProbe)
}

// partials returns the current probe set in deterministic order plus
// the aggregate version.
func (a *aggregator) partials() ([]core.Partial, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.byProbe))
	for n := range a.byProbe {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]core.Partial, 0, len(names))
	for _, n := range names {
		out = append(out, a.byProbe[n])
	}
	return out, a.ver
}

// Tenant is one hosted balancing authority / era / capture: its own
// engine (nil for probe-only tenants), historian namespace, fleet
// aggregator, and pre-built handler set.
type Tenant struct {
	name   string
	cfg    TenantConfig
	engine *stream.Engine
	src    stream.Source
	hist   *historian.Store
	agg    *aggregator
	// runner hosts a declared segment graph for "pipeline" tenants;
	// engine then aliases the graph's first analyzer (or stays nil for
	// analyzer-less graphs).
	runner *pipeline.Runner

	handlers map[string]http.Handler

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	partialsIn  *obs.Counter

	journal *obs.Journal

	cancel context.CancelFunc
	done   chan struct{}
	errMu  sync.Mutex
	runErr error
}

// newTenant builds one tenant from its config: source, engine,
// historian namespace, aggregator and metric series — everything but
// the handler set, which the service wires after it exists (handlers
// close over the service's cache).
func newTenant(cfg TenantConfig, svcCfg Config, reg *obs.Registry, journal *obs.Journal) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("service: tenant with empty name")
	}
	treg := reg.With("tenant", cfg.Name)
	t := &Tenant{
		name:        cfg.Name,
		cfg:         cfg,
		agg:         newAggregator(),
		journal:     journal,
		cacheHits:   treg.Counter("uncharted_service_cache_hits_total"),
		cacheMisses: treg.Counter("uncharted_service_cache_misses_total"),
		partialsIn:  treg.Counter("uncharted_service_partials_total"),
		done:        make(chan struct{}),
	}

	if cfg.Source.Kind == "pipeline" {
		if err := t.attachPipeline(cfg.Source, treg, journal); err != nil {
			return nil, fmt.Errorf("service: tenant %s: %w", cfg.Name, err)
		}
		return t, nil
	}

	src, nameMap, err := buildSource(cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("service: tenant %s: %w", cfg.Name, err)
	}
	if src == nil {
		// Probe-only tenant: no engine, the fleet aggregate is the
		// profile.
		return t, nil
	}
	t.src = src

	if cfg.Historian {
		root := svcCfg.HistorianRoot
		if root == "" {
			return nil, fmt.Errorf("service: tenant %s: historian enabled but no historian_root configured", cfg.Name)
		}
		st, err := historian.OpenNamespace(root, cfg.Name, historian.Options{Registry: treg})
		if err != nil {
			return nil, fmt.Errorf("service: tenant %s: %w", cfg.Name, err)
		}
		t.hist = st
	}

	var baseline *drift.Profile
	if cfg.BaselinePath != "" {
		baseline, err = drift.LoadProfile(cfg.BaselinePath)
		if err != nil {
			return nil, fmt.Errorf("service: tenant %s: %w", cfg.Name, err)
		}
	}

	snapshotEvery := time.Duration(cfg.Snapshot)
	if snapshotEvery <= 0 {
		snapshotEvery = time.Second
	}
	t.engine = stream.New(stream.Config{
		Workers:         cfg.Workers,
		SnapshotEvery:   snapshotEvery,
		IdleTimeout:     time.Duration(cfg.IdleTimeout),
		ClusterK:        cfg.ClusterK,
		ClusterSeed:     clusterSeed,
		Names:           nameMap,
		Registry:        treg,
		Journal:         journal,
		Historian:       t.hist,
		MaxPointSamples: cfg.PointCap,
		Baseline:        baseline,
	})
	return t, nil
}

// attachPipeline hosts a declared segment graph as the tenant's
// ingest: the named pipeline from a cmd/pipelined config file runs
// inside the tenant, and the tenant's profile surface binds to the
// graph's first analyzer segment (a graph without one still runs; the
// fleet aggregate is then the only profile).
func (t *Tenant) attachPipeline(sc SourceConfig, reg *obs.Registry, journal *obs.Journal) error {
	if sc.File == "" {
		return fmt.Errorf(`pipeline source needs "file" (a cmd/pipelined config)`)
	}
	pcfg, err := pipeline.Load(sc.File)
	if err != nil {
		return err
	}
	var pc *pipeline.PipelineConfig
	if sc.Pipeline == "" {
		if len(pcfg.Pipelines) != 1 {
			return fmt.Errorf("%s declares %d pipelines; set \"pipeline\" to pick one", sc.File, len(pcfg.Pipelines))
		}
		pc = &pcfg.Pipelines[0]
	} else {
		for i := range pcfg.Pipelines {
			if pcfg.Pipelines[i].Name == sc.Pipeline {
				pc = &pcfg.Pipelines[i]
				break
			}
		}
		if pc == nil {
			return fmt.Errorf("%s declares no pipeline %q", sc.File, sc.Pipeline)
		}
	}
	runner, err := pipeline.NewRunner(&pipeline.Config{Pipelines: []pipeline.PipelineConfig{*pc}},
		pipeline.Options{Registry: reg, Journal: journal})
	if err != nil {
		return err
	}
	t.runner = runner
	for _, st := range runner.Status() {
		for _, seg := range st.Segments {
			if a, ok := runner.Segment(st.Name, seg.ID).(*pipeline.AnalyzerSegment); ok {
				t.engine = a.Engine()
				t.hist = a.Historian()
				return nil
			}
		}
	}
	return nil
}

// buildSource materialises a tenant's packet source. A probe source
// returns (nil, nil, nil): no local ingest.
func buildSource(sc SourceConfig) (stream.Source, map[netip.Addr]string, error) {
	switch sc.Kind {
	case "probe", "":
		return nil, nil, nil
	case "sim":
		year := topology.Y1
		if sc.Year == 2 {
			year = topology.Y2
		}
		cfg := scadasim.DefaultConfig(year, sc.Seed)
		if sc.Duration > 0 {
			cfg.Duration = time.Duration(sc.Duration)
		}
		sim, err := scadasim.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		tr, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		return stream.NewRecordSource(tr.Records, sc.Speed), core.NamesFromTopology(sim.Network()), nil
	case "pcap":
		f, err := os.Open(sc.Path)
		if err != nil {
			return nil, nil, err
		}
		src, err := stream.NewPCAPSource(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return src, nil, nil
	case "follow":
		src, err := stream.NewFollowSource(sc.Path)
		if err != nil {
			return nil, nil, err
		}
		return src, nil, nil
	}
	return nil, nil, fmt.Errorf("unknown source kind %q (want sim, pcap, follow or probe)", sc.Kind)
}

// engineVersion is the cache version for engine-backed endpoints: the
// published snapshot sequence.
func (t *Tenant) engineVersion() string {
	if t.engine != nil {
		if p := t.engine.Profile(); p != nil {
			return strconv.Itoa(p.Seq)
		}
	}
	return "0"
}

// fleetVersion is the cache version for the fleet view: it moves with
// both the probe aggregate and the local snapshot sequence.
func (t *Tenant) fleetVersion() string {
	t.agg.mu.Lock()
	ver := t.agg.ver
	t.agg.mu.Unlock()
	return strconv.FormatUint(ver, 10) + "-" + t.engineVersion()
}

// fleetProfile merges the probe partials with the tenant's own latest
// snapshot (when an engine exists) into the fleet-wide rolling
// profile, or nil when nothing has been seen yet.
func (t *Tenant) fleetProfile() *stream.Profile {
	parts, ver := t.agg.partials()
	if t.engine != nil {
		if p, ok := t.engine.LastPartial(); ok {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return nil
	}
	merged := core.MergePartials(parts)
	prof := stream.BuildProfile(merged, int(ver), t.cfg.ClusterK, clusterSeed)
	prof.Workers = len(parts)
	return prof
}

// Ready reports tenant readiness: probe tenants are always ready;
// engine tenants are ready once their first snapshot has published —
// before that the query surface would serve 503s — and stay ready
// after a finite feed ends because the final profile keeps serving.
func (t *Tenant) Ready() (bool, string) {
	if t.engine == nil {
		return true, ""
	}
	if t.engine.Profile() == nil {
		if ok, reason := t.engine.Ready(); !ok {
			return false, reason
		}
		return false, "no snapshot published yet"
	}
	return true, ""
}

// handlePartial is POST /v1/{tenant}/partial: decode a drift-codec
// profile posted by a remote probe and fold it into the fleet
// aggregate. The probe label comes from ?probe=, falling back to the
// profile's own Meta.Label.
func (t *Tenant) handlePartial(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST a drift-codec profile")
		return
	}
	body, err := readAll(req, maxPartialBytes)
	if err != nil {
		writeJSONError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	prof, err := drift.DecodeProfile(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	probe := req.URL.Query().Get("probe")
	if probe == "" {
		probe = prof.Meta.Label
	}
	if probe == "" {
		writeJSONError(w, http.StatusBadRequest, "probe label missing: set ?probe= or the profile's label")
		return
	}
	ver, probes := t.agg.put(probe, prof.Partial)
	t.partialsIn.Inc()
	t.journal.Log(time.Now(), obs.EventPartial, probe, map[string]any{
		"tenant":  t.name,
		"packets": prof.Partial.Packets,
		"probes":  probes,
		"version": ver,
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":  t.name,
		"probe":   probe,
		"probes":  probes,
		"version": ver,
	})
}

// run drives the tenant's engine until its source is exhausted or the
// service drains it.
func (t *Tenant) run(ctx context.Context) {
	defer close(t.done)
	if t.runner != nil {
		// The graph owns its segments' lifecycles (the analyzer closes
		// its own historian); a cancelled ctx is the normal drain.
		err := t.runner.Run(ctx)
		t.errMu.Lock()
		t.runErr = err
		t.errMu.Unlock()
		return
	}
	if t.engine == nil {
		return
	}
	err := t.engine.Run(ctx, t.src)
	if errors.Is(err, context.Canceled) {
		// A drain is the normal way a live tenant stops.
		err = nil
	}
	t.src.Close()
	if t.hist != nil {
		if cerr := t.hist.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	t.errMu.Lock()
	t.runErr = err
	t.errMu.Unlock()
}

// Err returns the tenant's terminal ingest error, if any; valid once
// the tenant is drained.
func (t *Tenant) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.runErr
}
