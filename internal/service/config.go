package service

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that unmarshals from JSON as either a
// Go duration string ("30s", "1m30s") or a number of nanoseconds, so
// config files stay readable.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v := v.(type) {
	case float64:
		*d = Duration(time.Duration(v))
		return nil
	case string:
		dur, err := time.ParseDuration(v)
		if err != nil {
			return err
		}
		*d = Duration(dur)
		return nil
	}
	return fmt.Errorf("duration: want string or number, got %T", v)
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// SourceConfig says where a tenant's packets come from.
type SourceConfig struct {
	// Kind picks the source: "sim" (in-process simulator), "pcap"
	// (finished capture), "follow" (growing capture, tail -f style),
	// "probe" (no local ingest: the tenant only aggregates partials
	// posted by remote probes) or "pipeline" (host a declared segment
	// graph from a cmd/pipelined config file).
	Kind string `json:"kind"`
	// Year / Seed / Duration / Speed parameterise a sim source. Year
	// is the capture campaign (1 or 2), Speed the replay pacing
	// (60 = one simulated minute per wall second; 0 = as fast as
	// possible).
	Year     int      `json:"year,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	Duration Duration `json:"duration,omitempty"`
	Speed    float64  `json:"speed,omitempty"`
	// Path is the capture file for pcap / follow sources.
	Path string `json:"path,omitempty"`
	// File / Pipeline select a declared graph for the "pipeline"
	// source kind: File is a cmd/pipelined config (JSON/JSONC) and
	// Pipeline names the pipeline within it (optional when the file
	// declares exactly one). The tenant's profile surface binds to the
	// graph's first analyzer segment; tenant-level engine knobs
	// (workers, snapshot, ...) are ignored — the graph declares its
	// own.
	File     string `json:"file,omitempty"`
	Pipeline string `json:"pipeline,omitempty"`
}

// TenantConfig describes one hosted tenant: a balancing authority,
// era or capture with its own engine, historian namespace and query
// surface.
type TenantConfig struct {
	// Name routes the tenant: /v1/{name}/... It must be a clean path
	// element.
	Name   string       `json:"name"`
	Source SourceConfig `json:"source"`
	// Workers is the tenant's shard count (default 1).
	Workers int `json:"workers,omitempty"`
	// Snapshot is the rolling-profile period (default 1s).
	Snapshot Duration `json:"snapshot,omitempty"`
	// ClusterK enables session clustering in published profiles.
	ClusterK int `json:"cluster_k,omitempty"`
	// PointCap bounds in-memory samples per series (0 = unbounded).
	PointCap int `json:"point_cap,omitempty"`
	// IdleTimeout evicts idle flows from the tenant's trackers.
	IdleTimeout Duration `json:"idle_timeout,omitempty"`
	// Historian, when true, records the tenant's measurements into its
	// own namespace under the service's historian root and serves
	// /v1/{name}/query.
	Historian bool `json:"historian,omitempty"`
	// BaselinePath arms live drift detection against a stored profile
	// and serves /v1/{name}/drift.
	BaselinePath string `json:"baseline,omitempty"`
}

// Config parameterises the whole control-room service.
type Config struct {
	// Listen is the HTTP address (cmd/unchartedd's -addr overrides).
	Listen string `json:"listen,omitempty"`
	// CacheEntries caps the snapshot/query response cache (default
	// 4096 entries; 0 uses the default, negative disables caching).
	CacheEntries int `json:"cache_entries,omitempty"`
	// HistorianRoot is the directory holding one historian namespace
	// per tenant that enables it.
	HistorianRoot string `json:"historian_root,omitempty"`
	// Tenants is the hosted tenant list.
	Tenants []TenantConfig `json:"tenants"`
}

// LoadConfig reads and validates a service config file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("service: %s: %w", path, err)
	}
	return cfg, nil
}
