package service

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/obs"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// startSimService boots a one-sim-tenant service over a short
// synthesized capture and returns it with an httptest server mounted
// on its /v1 tree. The engine runs the feed to completion before
// return, so queries observe the final snapshot.
func startSimService(t *testing.T, tc TenantConfig, svcCfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if tc.Source.Kind == "" {
		tc.Source = SourceConfig{Kind: "sim", Year: 1, Seed: 7, Duration: Duration(2 * time.Minute)}
	}
	svcCfg.Tenants = append(svcCfg.Tenants, tc)
	svc, err := New(svcCfg, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start(context.Background())
	svc.Wait() // finite sim feed: drain fully so snapshots are stable
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServiceEndpointHeaders is the header / field-name regression
// test: every query endpoint must declare an explicit Content-Type,
// honor ?format=, reject unknown formats with a JSON 400, and keep the
// profile document's JSON field names stable.
func TestServiceEndpointHeaders(t *testing.T) {
	_, srv := startSimService(t, TenantConfig{Name: "east", Workers: 2, Historian: true},
		Config{HistorianRoot: t.TempDir()})

	cases := []struct {
		name       string
		path       string
		wantCode   int
		wantCT     string
		wantInBody string
	}{
		{"profile json default", "/v1/east/profile", 200, "application/json; charset=utf-8", `"seq"`},
		{"profile json explicit", "/v1/east/profile?format=json", 200, "application/json; charset=utf-8", `"packets"`},
		{"profile text", "/v1/east/profile?format=text", 200, "text/plain; charset=utf-8", "rolling profile seq"},
		{"profile bad format", "/v1/east/profile?format=xml", 400, "application/json; charset=utf-8", "unsupported format"},
		{"statusz html default", "/v1/east/statusz", 200, "text/html; charset=utf-8", "<html"},
		{"statusz json", "/v1/east/statusz?format=json", 200, "application/json; charset=utf-8", `"state"`},
		{"statusz text", "/v1/east/statusz?format=text", 200, "text/plain; charset=utf-8", "state "},
		{"query json default", "/v1/east/query", 200, "application/json; charset=utf-8", `"station"`},
		{"query text csv", "/v1/east/query?format=text", 200, "text/plain; charset=utf-8", "station,ioa,type"},
		{"query bad format", "/v1/east/query?format=yaml", 400, "application/json; charset=utf-8", "unsupported format"},
		{"unknown tenant", "/v1/nope/profile", 404, "application/json; charset=utf-8", "unknown tenant"},
		{"disabled endpoint", "/v1/east/drift", 404, "application/json; charset=utf-8", "not enabled"},
		{"index", "/v1/", 200, "application/json; charset=utf-8", `"tenants"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, srv.URL+tc.path)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("code %d, want %d (body %.120s)", resp.StatusCode, tc.wantCode, body)
			}
			if got := resp.Header.Get("Content-Type"); got != tc.wantCT {
				t.Errorf("Content-Type %q, want %q", got, tc.wantCT)
			}
			if !strings.Contains(string(body), tc.wantInBody) {
				t.Errorf("body %.160q missing %q", body, tc.wantInBody)
			}
		})
	}

	// The profile document's field names are API surface: downstream
	// dashboards bind to them, so renames must be deliberate.
	_, body := get(t, srv.URL+"/v1/east/profile")
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"seq", "workers", "first", "last", "packets", "iec_packets",
		"parse_errors", "seq_anomalies", "total_asdus", "flows",
		"compliance", "markov",
	} {
		if _, ok := doc[field]; !ok {
			t.Errorf("profile JSON lost field %q", field)
		}
	}
	flows, _ := doc["flows"].(map[string]any)
	for _, field := range []string{"total", "short_lived", "long_lived", "short_lived_subsec", "subsec_proportion"} {
		if _, ok := flows[field]; !ok {
			t.Errorf("profile flows JSON lost field %q", field)
		}
	}
}

func TestServiceCacheOverHTTP(t *testing.T) {
	_, srv := startSimService(t, TenantConfig{Name: "east", Workers: 1}, Config{})

	r1, b1 := get(t, srv.URL+"/v1/east/profile")
	if r1.Header.Get("X-Cache") != "miss" {
		t.Errorf("first read X-Cache %q, want miss", r1.Header.Get("X-Cache"))
	}
	r2, b2 := get(t, srv.URL+"/v1/east/profile")
	if r2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second read X-Cache %q, want hit", r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cached body differs from rendered body")
	}
	if e1, e2 := r1.Header.Get("ETag"), r2.Header.Get("ETag"); e1 == "" || e1 != e2 {
		t.Errorf("ETags %q / %q, want equal and non-empty", e1, e2)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/v1/east/profile", nil)
	req.Header.Set("If-None-Match", r1.Header.Get("ETag"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match code %d, want 304", resp.StatusCode)
	}
}

func TestPartialEndpointValidation(t *testing.T) {
	_, srv := startSimService(t, TenantConfig{Name: "fleet", Source: SourceConfig{Kind: "probe"}}, Config{})

	// GET on a POST-only route: the mux's method pattern rejects it.
	resp, _ := get(t, srv.URL+"/v1/fleet/partial")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET partial: code %d, want 405", resp.StatusCode)
	}

	// Garbage body fails codec validation.
	resp2, err := http.Post(srv.URL+"/v1/fleet/partial", "application/octet-stream",
		strings.NewReader("not a profile"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage partial: code %d, want 400", resp2.StatusCode)
	}

	// A valid profile with no label and no ?probe= is rejected.
	empty := drift.NewProfile("", "", core.Partial{}, time.Unix(0, 0))
	resp3, err := http.Post(srv.URL+"/v1/fleet/partial", "application/octet-stream",
		bytes.NewReader(empty.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest || !strings.Contains(string(body3), "probe label") {
		t.Errorf("unlabeled partial: code %d body %.120q, want 400 probe-label error", resp3.StatusCode, body3)
	}
}

// connKey canonicalizes a record's unordered IP pair — the same
// partitioning the streaming engine shards by — so every packet
// between two hosts lands in the same probe slice and the per-pair
// session state merges exactly.
func connKey(src, dst netip.AddrPort) string {
	a, b := src.Addr().String(), dst.Addr().String()
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// TestFleetMergeEquivalence is the acceptance test for remote-probe
// aggregation: a capture split by connection across two probes, each
// analyzed by its own offline analyzer (profiler-as-probe) and POSTed
// to /partial, must yield a served fleet profile identical to the
// local merge, and the merged state must match a single-process
// analysis of the whole capture on every exactly-mergeable aggregate.
func TestFleetMergeEquivalence(t *testing.T) {
	cfg := scadasim.DefaultConfig(topology.Y1, 11)
	cfg.Duration = 2 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	names := core.NamesFromTopology(sim.Network())

	// Split the capture by connection: probe A taps half the links,
	// probe B the other half.
	var half [2]scadasim.Trace
	for _, rec := range tr.Records {
		h := fnv.New32a()
		io.WriteString(h, connKey(rec.Src, rec.Dst))
		i := int(h.Sum32() % 2)
		half[i].Records = append(half[i].Records, rec)
	}
	if len(half[0].Records) == 0 || len(half[1].Records) == 0 {
		t.Fatal("degenerate split")
	}

	analyze := func(tr *scadasim.Trace) core.Partial {
		var buf bytes.Buffer
		if err := tr.WritePCAP(&buf); err != nil {
			t.Fatal(err)
		}
		a := core.NewAnalyzer(names)
		if err := a.ReadPCAP(&buf); err != nil {
			t.Fatal(err)
		}
		return a.Partial()
	}
	pa, pb := analyze(&half[0]), analyze(&half[1])
	full := analyze(tr)

	// Boot a probe tenant and post both partials, as profiler -push
	// would.
	_, srv := startSimService(t, TenantConfig{Name: "fleet", Source: SourceConfig{Kind: "probe"}}, Config{})
	for probe, p := range map[string]core.Partial{"siteA": pa, "siteB": pb} {
		prof := drift.NewProfile(probe, "split-capture", p, time.Unix(0, 0).UTC())
		resp, err := http.Post(srv.URL+"/v1/fleet/partial", "application/octet-stream",
			bytes.NewReader(prof.Encode()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post partial %s: code %d", probe, resp.StatusCode)
		}
	}

	// The served fleet profile must equal the local merge, byte for
	// byte (modulo JSON round-trip).
	_, body := get(t, srv.URL+"/v1/fleet/profile")
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("fleet profile: %v (body %.120q)", err, body)
	}
	merged := core.MergePartials([]core.Partial{pa, pb})
	wantProf := stream.BuildProfile(merged, 2, 0, clusterSeed)
	wantProf.Workers = 2
	wantJSON, err := json.Marshal(wantProf)
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]any
	json.Unmarshal(wantJSON, &want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("served fleet profile differs from local merge:\n got %.400s\nwant %.400s", body, wantJSON)
	}

	// And the merge itself must match single-process analysis of the
	// concatenated capture on every exactly-mergeable aggregate.
	if merged.Packets != full.Packets || merged.IECPackets != full.IECPackets {
		t.Errorf("packets %d/%d, want %d/%d", merged.Packets, merged.IECPackets, full.Packets, full.IECPackets)
	}
	if merged.TotalASDUs != full.TotalASDUs {
		t.Errorf("ASDUs %d, want %d", merged.TotalASDUs, full.TotalASDUs)
	}
	if !merged.First.Equal(full.First) || !merged.Last.Equal(full.Last) {
		t.Errorf("window [%v %v], want [%v %v]", merged.First, merged.Last, full.First, full.Last)
	}
	mf, ff := merged.Flows, full.Flows
	if mf.ShortLived != ff.ShortLived || mf.LongLived != ff.LongLived ||
		mf.ShortLivedSubSec != ff.ShortLivedSubSec || mf.ShortLivedOverSec != ff.ShortLivedOverSec {
		t.Errorf("flow summary %+v, want %+v", mf, ff)
	}
	if !reflect.DeepEqual(merged.TypeCounts, full.TypeCounts) {
		t.Errorf("type counts %v, want %v", merged.TypeCounts, full.TypeCounts)
	}
	mc, fc := merged.ComplianceReport(), full.ComplianceReport()
	if !reflect.DeepEqual(mc.NonCompliant, fc.NonCompliant) {
		t.Errorf("non-compliant %v, want %v", mc.NonCompliant, fc.NonCompliant)
	}
	mm, fm := merged.MarkovReport(), full.MarkovReport()
	if mm.Distribution != fm.Distribution {
		t.Errorf("markov distribution %v, want %v", mm.Distribution, fm.Distribution)
	}
	if len(merged.Features) != len(full.Features) {
		t.Errorf("%d session features, want %d", len(merged.Features), len(full.Features))
	}

	// A probe re-posting replaces its previous partial rather than
	// double counting.
	prof := drift.NewProfile("siteA", "split-capture", pa, time.Unix(0, 0).UTC())
	resp, err := http.Post(srv.URL+"/v1/fleet/partial?probe=siteA", "application/octet-stream",
		bytes.NewReader(prof.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Probes  int    `json:"probes"`
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Probes != 2 {
		t.Errorf("re-post grew probe set to %d, want 2", ack.Probes)
	}
	_, body2 := get(t, srv.URL+"/v1/fleet/profile")
	var got2 map[string]any
	json.Unmarshal(body2, &got2)
	if got2["packets"] != got["packets"] {
		t.Errorf("re-post changed packet count %v -> %v", got["packets"], got2["packets"])
	}
}

func TestConfigDuration(t *testing.T) {
	cases := []struct {
		in      string
		want    time.Duration
		wantErr bool
	}{
		{`"30s"`, 30 * time.Second, false},
		{`"1m30s"`, 90 * time.Second, false},
		{`1000000000`, time.Second, false},
		{`"bogus"`, 0, true},
		{`true`, 0, true},
	}
	for _, tc := range cases {
		var d Duration
		err := json.Unmarshal([]byte(tc.in), &d)
		if tc.wantErr != (err != nil) {
			t.Errorf("%s: err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && time.Duration(d) != tc.want {
			t.Errorf("%s: %v, want %v", tc.in, time.Duration(d), tc.want)
		}
	}
	// Round trip.
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Errorf("marshal: %s, %v", out, err)
	}
}

func TestServiceRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no tenants", Config{}},
		{"duplicate tenant", Config{Tenants: []TenantConfig{
			{Name: "a", Source: SourceConfig{Kind: "probe"}},
			{Name: "a", Source: SourceConfig{Kind: "probe"}},
		}}},
		{"bad tenant name", Config{Tenants: []TenantConfig{
			{Name: "a/b", Source: SourceConfig{Kind: "probe"}},
		}}},
		{"unknown source", Config{Tenants: []TenantConfig{
			{Name: "a", Source: SourceConfig{Kind: "carrier-pigeon"}},
		}}},
		{"historian without root", Config{Tenants: []TenantConfig{
			{Name: "a", Source: SourceConfig{Kind: "sim", Duration: Duration(time.Minute)}, Historian: true},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg, obs.NewRegistry(), nil); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestLoadgenAgainstService wires the loadgen library against a live
// service and sanity-checks the report: traffic flowed, nothing
// 5xx'd, and repeated profile reads hit the snapshot cache.
func TestLoadgenAgainstService(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	_, srv := startSimService(t, TenantConfig{Name: "east", Workers: 1}, Config{})

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  srv.URL,
		Tenants:  []string{"east"},
		Clients:  32,
		Duration: 1 * time.Second,
		Mix:      map[string]int{"profile": 4, "statusz": 1},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors5xx != 0 {
		t.Errorf("%d 5xx responses", rep.Errors5xx)
	}
	if rep.CacheHitRatio < 0.9 {
		t.Errorf("cache hit ratio %.3f, want > 0.9 on repeated profile reads", rep.CacheHitRatio)
	}
	var sum int64
	for _, ep := range rep.Endpoints {
		sum += ep.Requests
	}
	if sum != rep.Requests {
		t.Errorf("endpoint rows sum to %d, total says %d", sum, rep.Requests)
	}
}

// TestPipelineTenant hosts a declared segment graph as a tenant: the
// tenant's profile surface must bind to the graph's analyzer, and the
// /pipeline endpoint must expose the live graph.
func TestPipelineTenant(t *testing.T) {
	dir := t.TempDir()
	pipePath := dir + "/graph.jsonc"
	pipeDoc := `// test graph
	{
	  "pipelines": [
	    {
	      "name": "hosted",
	      "segments": [
	        { "id": "src", "segment": "sim", "params": { "duration": "5s", "seed": 5 } },
	        { "id": "an", "segment": "analyzer", "from": ["src"], "params": { "workers": 2 } },
	      ],
	    },
	  ],
	}`
	if err := os.WriteFile(pipePath, []byte(pipeDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	_, srv := startSimService(t,
		TenantConfig{Name: "hosted", Source: SourceConfig{Kind: "pipeline", File: pipePath}},
		Config{})

	resp, body := get(t, srv.URL+"/v1/hosted/profile")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: status %d: %s", resp.StatusCode, body)
	}
	var prof stream.Profile
	if err := json.Unmarshal(body, &prof); err != nil {
		t.Fatalf("profile: %v", err)
	}
	if prof.Packets == 0 {
		t.Error("hosted pipeline analyzed zero packets")
	}

	resp, body = get(t, srv.URL+"/v1/hosted/pipeline?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"hosted"`)) || !bytes.Contains(body, []byte(`"analyzer"`)) {
		t.Errorf("pipeline status missing graph detail: %s", body)
	}
}

// TestPipelineTenantErrors pins the config failure modes of the
// pipeline source kind.
func TestPipelineTenantErrors(t *testing.T) {
	dir := t.TempDir()
	two := dir + "/two.jsonc"
	doc := `{"pipelines": [
	  {"name": "a", "segments": [{ "id": "src", "segment": "sim", "params": {"duration": "1s"} }]},
	  {"name": "b", "segments": [{ "id": "src", "segment": "sim", "params": {"duration": "1s"} }]}
	]}`
	if err := os.WriteFile(two, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		src  SourceConfig
		want string
	}{
		{"missing file", SourceConfig{Kind: "pipeline"}, `"file"`},
		{"ambiguous pipeline", SourceConfig{Kind: "pipeline", File: two}, "declares 2 pipelines"},
		{"unknown pipeline", SourceConfig{Kind: "pipeline", File: two, Pipeline: "c"}, `no pipeline "c"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(Config{Tenants: []TenantConfig{{Name: "x", Source: tc.src}}}, obs.NewRegistry(), nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New error = %v, want containing %q", err, tc.want)
			}
		})
	}
	// Selecting by name works.
	svc, err := New(Config{Tenants: []TenantConfig{
		{Name: "x", Source: SourceConfig{Kind: "pipeline", File: two, Pipeline: "b"}},
	}}, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start(context.Background())
	svc.Wait()
}
