package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"uncharted/internal/obs"
)

// testTenant builds a bare tenant (no engine) plus a caching service
// around it, for exercising the cached middleware in isolation.
func testTenant(cacheMax int) (*Service, *Tenant) {
	reg := obs.NewRegistry()
	treg := reg.With("tenant", "t1")
	s := &Service{cache: NewCache(cacheMax), reg: reg}
	t := &Tenant{
		name:        "t1",
		agg:         newAggregator(),
		cacheHits:   treg.Counter("uncharted_service_cache_hits_total"),
		cacheMisses: treg.Counter("uncharted_service_cache_misses_total"),
	}
	return s, t
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.put("a", &cacheEntry{key: "a"})
	c.put("b", &cacheEntry{key: "b"})
	if _, ok := c.get("a"); !ok { // promote a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", &cacheEntry{key: "c"}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be present")
	}
	if got := c.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestCacheKeyDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, tc := range []struct{ tenant, ep, ver, query string }{
		{"a", "profile", "1", ""},
		{"a", "profile", "2", ""},
		{"a", "profile", "1", "format=text"},
		{"a", "drift", "1", ""},
		{"b", "profile", "1", ""},
	} {
		key, etag := cacheKey(tc.tenant, tc.ep, tc.ver, tc.query)
		if prev, dup := seen[key]; dup {
			t.Errorf("key collision: %q vs %q", prev, key)
		}
		seen[key] = etag
		if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
			t.Errorf("etag %q not quoted", etag)
		}
	}
	// Same inputs must be stable.
	k1, e1 := cacheKey("a", "profile", "1", "")
	k2, e2 := cacheKey("a", "profile", "1", "")
	if k1 != k2 || e1 != e2 {
		t.Error("cacheKey not deterministic")
	}
}

// TestCachedInvalidation is the table-driven cache correctness test:
// a new snapshot (version bump) must invalidate stale responses —
// the ETag changes and the body reflects the new snapshot — while
// repeat reads of one version hit.
func TestCachedInvalidation(t *testing.T) {
	s, tn := testTenant(16)
	var version atomic.Int64
	version.Store(1)
	var renders atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		renders.Add(1)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, `{"snapshot":%d,"query":%q}`, version.Load(), req.URL.RawQuery)
	})
	h := s.cached(tn, "profile", func() string { return fmt.Sprint(version.Load()) }, inner)

	get := func(query, inm string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/v1/t1/profile", nil)
		req.URL.RawQuery = query
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	steps := []struct {
		name      string
		bump      bool   // publish a new snapshot first
		query     string // raw query
		wantCache string // expected X-Cache
		wantBody  string // expected body substring
	}{
		{name: "first read misses", query: "", wantCache: "miss", wantBody: `"snapshot":1`},
		{name: "repeat read hits", query: "", wantCache: "hit", wantBody: `"snapshot":1`},
		{name: "distinct query misses", query: "format=json", wantCache: "miss", wantBody: `"snapshot":1`},
		{name: "new snapshot invalidates", bump: true, query: "", wantCache: "miss", wantBody: `"snapshot":2`},
		{name: "new snapshot re-hits", query: "", wantCache: "hit", wantBody: `"snapshot":2`},
	}
	var etags []string
	for _, st := range steps {
		if st.bump {
			version.Add(1)
		}
		rr := get(st.query, "")
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: code %d", st.name, rr.Code)
		}
		if got := rr.Header().Get("X-Cache"); got != st.wantCache {
			t.Errorf("%s: X-Cache %q, want %q", st.name, got, st.wantCache)
		}
		if body := rr.Body.String(); !strings.Contains(body, st.wantBody) {
			t.Errorf("%s: body %q missing %q", st.name, body, st.wantBody)
		}
		if et := rr.Header().Get("ETag"); et == "" {
			t.Errorf("%s: no ETag", st.name)
		} else {
			etags = append(etags, et)
		}
	}
	// Same-version reads share an ETag; a new snapshot changes it.
	if etags[0] != etags[1] {
		t.Errorf("repeat read changed ETag: %q vs %q", etags[0], etags[1])
	}
	if etags[0] == etags[3] {
		t.Errorf("new snapshot kept stale ETag %q", etags[0])
	}

	// A matching If-None-Match yields 304 with no body.
	rr := get("", etags[4])
	if rr.Code != http.StatusNotModified {
		t.Errorf("If-None-Match: code %d, want 304", rr.Code)
	}
	if rr.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", rr.Body.String())
	}

	// The stale ETag no longer matches — full 200 response.
	rr = get("", etags[0])
	if rr.Code != http.StatusOK {
		t.Errorf("stale If-None-Match: code %d, want 200", rr.Code)
	}
}

func TestCachedSkipsNon200(t *testing.T) {
	s, tn := testTenant(16)
	var calls atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "not yet", http.StatusServiceUnavailable)
	})
	h := s.cached(tn, "profile", func() string { return "1" }, inner)
	for i := 0; i < 3; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("code %d", rr.Code)
		}
		if rr.Header().Get("ETag") != "" {
			t.Error("503 must not carry an ETag")
		}
	}
	if calls.Load() != 3 {
		t.Errorf("inner called %d times, want 3 (non-200 must not cache)", calls.Load())
	}
	if s.cache.Len() != 0 {
		t.Errorf("cache holds %d entries after non-200s", s.cache.Len())
	}
}

// TestCachedConcurrentReaders hammers the cached handler from many
// goroutines while snapshots keep publishing, asserting no reader ever
// observes a torn response: every body must exactly match the
// canonical rendering of some version, and the ETag must be consistent
// with that body. Run with -race this also proves the cache itself is
// data-race free.
func TestCachedConcurrentReaders(t *testing.T) {
	s, tn := testTenant(8)
	var version atomic.Int64
	version.Store(1)
	canonical := func(v int64) string {
		return fmt.Sprintf(`{"snapshot":%d,"payload":%q}`, v, strings.Repeat("x", 1024+int(v)%7))
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		// Write in several chunks so a torn copy would be detectable.
		v := version.Load()
		body := canonical(v)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		for i := 0; i < len(body); i += 100 {
			end := i + 100
			if end > len(body) {
				end = len(body)
			}
			w.Write([]byte(body[i:end]))
		}
	})
	h := s.cached(tn, "profile", func() string { return fmt.Sprint(version.Load()) }, inner)

	const readers = 8
	const reads = 400
	stop := make(chan struct{})
	go func() {
		for i := 0; i < 40; i++ {
			version.Add(1)
		}
		close(stop)
	}()
	var wg sync.WaitGroup
	errs := make(chan string, readers*4)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
				body := rr.Body.String()
				var v int64
				if _, err := fmt.Sscanf(body, `{"snapshot":%d`, &v); err != nil {
					select {
					case errs <- fmt.Sprintf("unparseable body %.60q", body):
					default:
					}
					continue
				}
				if body != canonical(v) {
					select {
					case errs <- fmt.Sprintf("torn response for version %d: %.60q", v, body):
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	<-stop
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
