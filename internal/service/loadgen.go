package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// LoadMix weights the endpoints a load client hits. The default mix
// models a control-room wall: mostly profile reads (the dashboards),
// some historian queries and drift checks, an occasional statusz.
var DefaultMix = map[string]int{
	"profile": 8,
	"query":   2,
	"drift":   1,
	"statusz": 1,
}

// LoadOptions parameterises RunLoad.
type LoadOptions struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:9180".
	BaseURL string
	// Tenants are the tenant names to spread requests over.
	Tenants []string
	// Clients is the number of concurrent clients (default 100).
	Clients int
	// Duration is how long to run (default 5s).
	Duration time.Duration
	// Mix weights the endpoints (default DefaultMix). Endpoints a
	// tenant doesn't serve still count their 404s, so keep the mix to
	// what the target config enables.
	Mix map[string]int
	// Timeout bounds one request (default 10s).
	Timeout time.Duration
	// Seed makes the per-client endpoint/tenant choices reproducible.
	Seed int64
}

// EndpointStats is the per-endpoint slice of a load report.
type EndpointStats struct {
	Endpoint    string  `json:"endpoint"`
	Requests    int64   `json:"requests"`
	Errors5xx   int64   `json:"errors_5xx"`
	Errors4xx   int64   `json:"errors_4xx"`
	NetErrors   int64   `json:"net_errors"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	MaxMicros   float64 `json:"max_us"`
}

// LoadReport is the machine-readable result of one load run — the
// shape committed as BENCH_service.json and delta-compared by
// cmd/benchtables.
type LoadReport struct {
	Clients        int             `json:"clients"`
	Tenants        int             `json:"tenants"`
	DurationSec    float64         `json:"duration_sec"`
	Requests       int64           `json:"requests"`
	RequestsPerSec float64         `json:"requests_per_sec"`
	Errors5xx      int64           `json:"errors_5xx"`
	Errors4xx      int64           `json:"errors_4xx"`
	NetErrors      int64           `json:"net_errors"`
	CacheHits      int64           `json:"cache_hits"`
	CacheMisses    int64           `json:"cache_misses"`
	CacheHitRatio  float64         `json:"cache_hit_ratio"`
	P50Micros      float64         `json:"p50_us"`
	P99Micros      float64         `json:"p99_us"`
	Endpoints      []EndpointStats `json:"endpoints"`
}

// clientStats is one client's private tally — merged after the run so
// the hot loop never contends on a shared lock.
type clientStats struct {
	byEndpoint map[string]*epTally
}

type epTally struct {
	requests, e5xx, e4xx, netErr, hits, misses int64
	latencies                                  []int64 // microseconds
}

// RunLoad drives opts.Clients concurrent clients against the service
// for opts.Duration, spreading a weighted endpoint mix over the tenant
// list, and returns latency percentiles, error counts and the cache
// hit ratio observed from the X-Cache response header.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if len(opts.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: at least one tenant required")
	}
	if opts.Clients <= 0 {
		opts.Clients = 100
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	mix := opts.Mix
	if len(mix) == 0 {
		mix = DefaultMix
	}
	// Flatten the mix into a weighted pick table.
	endpoints := make([]string, 0, len(mix))
	for ep := range mix {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	var picks []string
	for _, ep := range endpoints {
		for i := 0; i < mix[ep]; i++ {
			picks = append(picks, ep)
		}
	}
	if len(picks) == 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weights")
	}

	transport := &http.Transport{
		MaxIdleConns:        opts.Clients * 2,
		MaxIdleConnsPerHost: opts.Clients * 2,
		IdleConnTimeout:     30 * time.Second,
	}
	client := &http.Client{Transport: transport, Timeout: opts.Timeout}
	defer transport.CloseIdleConnections()

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	stats := make([]*clientStats, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.Clients; i++ {
		cs := &clientStats{byEndpoint: make(map[string]*epTally, len(mix))}
		stats[i] = cs
		wg.Add(1)
		go func(id int, cs *clientStats) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(id)*7919))
			for runCtx.Err() == nil {
				ep := picks[rng.Intn(len(picks))]
				tenant := opts.Tenants[rng.Intn(len(opts.Tenants))]
				tally := cs.byEndpoint[ep]
				if tally == nil {
					tally = &epTally{}
					cs.byEndpoint[ep] = tally
				}
				url := opts.BaseURL + "/v1/" + tenant + "/" + ep
				req, err := http.NewRequestWithContext(runCtx, http.MethodGet, url, nil)
				if err != nil {
					tally.netErr++
					continue
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				elapsed := time.Since(t0).Microseconds()
				if err != nil {
					// The deadline firing mid-request is the normal way
					// a run ends, not an error.
					if runCtx.Err() != nil {
						return
					}
					tally.netErr++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tally.requests++
				tally.latencies = append(tally.latencies, elapsed)
				switch {
				case resp.StatusCode >= 500:
					tally.e5xx++
				case resp.StatusCode >= 400:
					tally.e4xx++
				}
				switch resp.Header.Get("X-Cache") {
				case "hit":
					tally.hits++
				case "miss":
					tally.misses++
				}
			}
		}(i, cs)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge per-client tallies.
	merged := make(map[string]*epTally)
	for _, cs := range stats {
		for ep, t := range cs.byEndpoint {
			m := merged[ep]
			if m == nil {
				m = &epTally{}
				merged[ep] = m
			}
			m.requests += t.requests
			m.e5xx += t.e5xx
			m.e4xx += t.e4xx
			m.netErr += t.netErr
			m.hits += t.hits
			m.misses += t.misses
			m.latencies = append(m.latencies, t.latencies...)
		}
	}

	rep := &LoadReport{
		Clients:     opts.Clients,
		Tenants:     len(opts.Tenants),
		DurationSec: elapsed.Seconds(),
	}
	var all []int64
	epNames := make([]string, 0, len(merged))
	for ep := range merged {
		epNames = append(epNames, ep)
	}
	sort.Strings(epNames)
	for _, ep := range epNames {
		t := merged[ep]
		sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })
		es := EndpointStats{
			Endpoint:    ep,
			Requests:    t.requests,
			Errors5xx:   t.e5xx,
			Errors4xx:   t.e4xx,
			NetErrors:   t.netErr,
			CacheHits:   t.hits,
			CacheMisses: t.misses,
			P50Micros:   percentile(t.latencies, 0.50),
			P99Micros:   percentile(t.latencies, 0.99),
		}
		if n := len(t.latencies); n > 0 {
			es.MaxMicros = float64(t.latencies[n-1])
		}
		rep.Endpoints = append(rep.Endpoints, es)
		rep.Requests += t.requests
		rep.Errors5xx += t.e5xx
		rep.Errors4xx += t.e4xx
		rep.NetErrors += t.netErr
		rep.CacheHits += t.hits
		rep.CacheMisses += t.misses
		all = append(all, t.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50Micros = percentile(all, 0.50)
	rep.P99Micros = percentile(all, 0.99)
	if elapsed > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / elapsed.Seconds()
	}
	if denom := rep.CacheHits + rep.CacheMisses; denom > 0 {
		rep.CacheHitRatio = float64(rep.CacheHits) / float64(denom)
	}
	return rep, nil
}

// percentile reads the p-th quantile from an ascending-sorted slice of
// microsecond latencies.
func percentile(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx])
}

// WaitReady polls base+"/readyz" until it answers 200, the context
// ends, or timeout elapses. It is how cmd/loadgen and the CI smoke
// wait for the daemon's tenants to publish their first snapshots.
func WaitReady(ctx context.Context, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	var last string
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("%d %s", resp.StatusCode, string(body))
		} else {
			last = err.Error()
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: %s/readyz not ready after %s: %s", base, timeout, last)
}

// WriteLoadReport writes a load report as indented JSON — the
// committed BENCH_service.json format.
func WriteLoadReport(path string, rep *LoadReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadLoadReport reads a previously written load report.
func LoadLoadReport(path string) (*LoadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
