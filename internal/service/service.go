// Package service is the control-room layer of the measurement
// pipeline: one process hosting N concurrent streaming engines — one
// per tenant, where a tenant is a balancing authority, a capture era,
// or a single capture — behind a multi-tenant HTTP API:
//
//	GET  /v1/{tenant}/profile   rolling profile (cached per snapshot)
//	GET  /v1/{tenant}/drift     live drift report (cached)
//	GET  /v1/{tenant}/query     historian queries, per-tenant namespace
//	GET  /v1/{tenant}/statusz   live pipeline topology (uncached)
//	GET  /v1/{tenant}/fleet     fleet-wide merged profile (cached)
//	GET  /v1/{tenant}/pipeline  hosted segment-graph status (pipeline tenants)
//	POST /v1/{tenant}/partial   remote-probe partial ingest
//	GET  /v1/{tenant}/readyz    tenant readiness
//	GET  /v1/                   tenant index
//
// The query handlers are the same constructors the single-engine
// commands mount (internal/stream), wrapped in a snapshot-keyed LRU
// response cache: hot reads of the current snapshot are served from
// memory with a stable ETag and never touch the analyzer; publishing
// a new snapshot starts a fresh cache generation. Remote probes
// (profiler -push, or anything that can write the drift profile
// codec) post their merged partials to /partial, and the commutative
// MergePartials folds them into a fleet-wide rolling profile — the
// paper's per-substation taps aggregated at the fleet collection
// point.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"uncharted/internal/obs"
	"uncharted/internal/pipeline"
	"uncharted/internal/stream"
)

// Service hosts the tenants. Build with New, start ingest with Start,
// mount Handler, stop with Drain.
type Service struct {
	cfg     Config
	reg     *obs.Registry
	journal *obs.Journal
	cache   *Cache
	tenants map[string]*Tenant
	order   []string
	mux     *http.ServeMux
}

// New builds the service and all its tenants (sources included: sim
// tenants synthesize their feed here, so New is where the cost is).
// reg and journal may be nil.
func New(cfg Config, reg *obs.Registry, journal *obs.Journal) (*Service, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("service: no tenants configured")
	}
	var cache *Cache
	if cfg.CacheEntries >= 0 {
		cache = NewCache(cfg.CacheEntries)
	}
	s := &Service{
		cfg:     cfg,
		reg:     reg,
		journal: journal,
		cache:   cache,
		tenants: make(map[string]*Tenant),
		mux:     http.NewServeMux(),
	}
	for _, tc := range cfg.Tenants {
		if strings.ContainsAny(tc.Name, "/\\ ") {
			return nil, fmt.Errorf("service: invalid tenant name %q", tc.Name)
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("service: duplicate tenant %q", tc.Name)
		}
		t, err := newTenant(tc, cfg, reg, journal)
		if err != nil {
			return nil, err
		}
		s.wireTenant(t)
		s.tenants[tc.Name] = t
		s.order = append(s.order, tc.Name)
	}
	s.routes()
	return s, nil
}

// wireTenant builds the tenant's handler set from the shared stream
// constructors plus the service-level cache and aggregation routes.
func (s *Service) wireTenant(t *Tenant) {
	t.handlers = make(map[string]http.Handler)
	if t.engine != nil {
		eps := stream.Endpoints(t.engine, t.hist)
		t.handlers["profile"] = s.cached(t, "profile", t.engineVersion, eps["/profile"])
		t.handlers["statusz"] = eps["/statusz"]
		if h, ok := eps["/drift"]; ok {
			t.handlers["drift"] = s.cached(t, "drift", t.engineVersion, h)
		}
		if h, ok := eps["/query"]; ok {
			t.handlers["query"] = s.cached(t, "query", t.engineVersion, h)
		}
	} else {
		// Probe-only tenant: the fleet aggregate IS the profile.
		t.handlers["profile"] = s.cached(t, "profile", t.fleetVersion, stream.NewProfileHandler(t.fleetProfile))
	}
	if t.runner != nil {
		// The live graph view (uncached: it moves every poll).
		t.handlers["pipeline"] = pipeline.NewStatusHandler(t.runner.Status)
	}
	t.handlers["fleet"] = s.cached(t, "fleet", t.fleetVersion, stream.NewProfileHandler(t.fleetProfile))
	t.handlers["partial"] = http.HandlerFunc(t.handlePartial)
	t.handlers["readyz"] = obs.ReadyHandler(t.Ready)
}

// routes mounts the /v1 tree. Patterns carry the method, so a POST to
// /profile is 405 from the mux itself.
func (s *Service) routes() {
	query := func(endpoint string) http.Handler { return s.tenantRoute(endpoint) }
	s.mux.Handle("GET /v1/{tenant}/profile", query("profile"))
	s.mux.Handle("GET /v1/{tenant}/drift", query("drift"))
	s.mux.Handle("GET /v1/{tenant}/query", query("query"))
	s.mux.Handle("GET /v1/{tenant}/statusz", query("statusz"))
	s.mux.Handle("GET /v1/{tenant}/fleet", query("fleet"))
	s.mux.Handle("GET /v1/{tenant}/pipeline", query("pipeline"))
	s.mux.Handle("GET /v1/{tenant}/readyz", query("readyz"))
	s.mux.Handle("POST /v1/{tenant}/partial", s.tenantRoute("partial"))
	s.mux.HandleFunc("GET /v1/{$}", s.handleIndex)
	s.mux.HandleFunc("GET /v1", s.handleIndex)
}

// tenantRoute resolves {tenant} and dispatches to its handler for the
// endpoint, counting every request by tenant, endpoint and status.
func (s *Service) tenantRoute(endpoint string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("tenant")
		t, ok := s.tenants[name]
		if !ok {
			s.reg.Counter("uncharted_service_requests_total",
				"tenant", "unknown", "endpoint", endpoint, "code", "404").Inc()
			writeJSONError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", name))
			return
		}
		h, ok := t.handlers[endpoint]
		if !ok {
			s.reg.Counter("uncharted_service_requests_total",
				"tenant", name, "endpoint", endpoint, "code", "404").Inc()
			writeJSONError(w, http.StatusNotFound,
				fmt.Sprintf("endpoint %s not enabled for tenant %s", endpoint, name))
			return
		}
		cw := &countingWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(cw, req)
		s.reg.Counter("uncharted_service_requests_total",
			"tenant", name, "endpoint", endpoint, "code", fmt.Sprint(cw.code)).Inc()
	})
}

// handleIndex is GET /v1: the tenant directory.
func (s *Service) handleIndex(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		Name      string   `json:"name"`
		Source    string   `json:"source"`
		Ready     bool     `json:"ready"`
		Reason    string   `json:"reason,omitempty"`
		Seq       int      `json:"seq"`
		Probes    int      `json:"probes"`
		Endpoints []string `json:"endpoints"`
	}
	rows := make([]row, 0, len(s.order))
	for _, name := range s.order {
		t := s.tenants[name]
		ready, reason := t.Ready()
		r := row{Name: name, Source: t.cfg.Source.Kind, Ready: ready, Reason: reason}
		if r.Source == "" {
			r.Source = "probe"
		}
		if t.engine != nil {
			if p := t.engine.Profile(); p != nil {
				r.Seq = p.Seq
			}
		}
		t.agg.mu.Lock()
		r.Probes = len(t.agg.byProbe)
		t.agg.mu.Unlock()
		for ep := range t.handlers {
			r.Endpoints = append(r.Endpoints, ep)
		}
		sort.Strings(r.Endpoints)
		rows = append(rows, r)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants":       rows,
		"cache_entries": s.cacheLen(),
	})
}

func (s *Service) cacheLen() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Len()
}

// Handler returns the /v1 tree, ready to mount into obs.HandlerWith
// under the "/v1/" prefix (the service mux patterns carry the full
// path, so no stripping is needed).
func (s *Service) Handler() http.Handler { return s.mux }

// Endpoints returns the route map for obs.HandlerWith so the daemon
// serves /v1/... next to /metrics, /healthz and the pprof tree.
func (s *Service) Endpoints() map[string]http.Handler {
	return map[string]http.Handler{
		"/v1":     s.mux,
		"/v1/":    s.mux,
		"/readyz": obs.ReadyHandler(s.Ready),
	}
}

// Start launches every tenant's ingest. The engines drain when ctx is
// cancelled; Drain waits for them.
func (s *Service) Start(ctx context.Context) {
	for _, name := range s.order {
		t := s.tenants[name]
		tctx, cancel := context.WithCancel(ctx)
		t.cancel = cancel
		go t.run(tctx)
	}
}

// Drain cancels every tenant's ingest and waits until all engines
// have drained their shards and published their final profiles — the
// graceful-shutdown path reusing the engine lifecycle state machine.
func (s *Service) Drain() {
	for _, name := range s.order {
		if c := s.tenants[name].cancel; c != nil {
			c()
		}
	}
	for _, name := range s.order {
		<-s.tenants[name].done
	}
}

// Wait blocks until every tenant's ingest finished on its own (finite
// sources) or was drained.
func (s *Service) Wait() {
	for _, name := range s.order {
		<-s.tenants[name].done
	}
}

// Ready is the service-wide readiness check: every tenant must be
// ready.
func (s *Service) Ready() (bool, string) {
	for _, name := range s.order {
		if ok, reason := s.tenants[name].Ready(); !ok {
			return false, name + ": " + reason
		}
	}
	return true, ""
}

// Tenant returns a hosted tenant by name, or nil.
func (s *Service) Tenant(name string) *Tenant { return s.tenants[name] }

// Tenants returns the tenant names in config order.
func (s *Service) Tenants() []string { return append([]string(nil), s.order...) }

// countingWriter captures the status code for the request counter.
type countingWriter struct {
	http.ResponseWriter
	code int
}

func (c *countingWriter) WriteHeader(code int) {
	c.code = code
	c.ResponseWriter.WriteHeader(code)
}

// writeJSON renders a JSON response with the service's standard
// header.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeJSONError is the service's uniform error document.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// readAll reads a request body up to limit bytes, failing when the
// body exceeds it.
func readAll(req *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(req.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("body exceeds %d bytes", limit)
	}
	return body, nil
}
