package iec104

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, a *ASDU, p Profile) *ASDU {
	t.Helper()
	b, err := a.Marshal(p)
	if err != nil {
		t.Fatalf("marshal %v: %v", a.Type, err)
	}
	got, err := ParseASDU(b, p)
	if err != nil {
		t.Fatalf("parse %v: %v", a.Type, err)
	}
	return got
}

func TestASDURoundTripFloat(t *testing.T) {
	for _, p := range CandidateProfiles {
		a := NewMeasurement(MMeNc, 3, 700, Value{Kind: KindFloat, Float: 59.98, Quality: Quality{}}, CauseSpontaneous)
		got := roundTrip(t, a, p)
		if got.Type != MMeNc || got.CommonAddr != 3 {
			t.Fatalf("%v: DUI mismatch: %+v", p, got)
		}
		if got.Objects[0].IOA != 700 {
			t.Fatalf("%v: IOA = %d", p, got.Objects[0].IOA)
		}
		if math.Abs(got.Objects[0].Value.Float-59.98) > 1e-4 {
			t.Fatalf("%v: value = %v", p, got.Objects[0].Value.Float)
		}
	}
}

func TestASDURoundTripTimeTagged(t *testing.T) {
	ts := time.Date(2026, 7, 5, 13, 37, 42, 250e6, time.UTC)
	a := NewMeasurement(MMeTf, 1, 2001, Value{
		Kind: KindFloat, Float: -12.5, HasTime: true,
		Time: CP56Time2a{Time: ts},
	}, CausePeriodic)
	got := roundTrip(t, a, Standard)
	v := got.Objects[0].Value
	if !v.HasTime {
		t.Fatal("time tag lost")
	}
	if !v.Time.Time.Equal(ts) {
		t.Fatalf("time = %v, want %v", v.Time.Time, ts)
	}
	if v.Float != -12.5 {
		t.Fatalf("value = %v", v.Float)
	}
}

func TestASDUSequenceEncoding(t *testing.T) {
	objs := make([]InfoObject, 10)
	for i := range objs {
		objs[i] = InfoObject{IOA: uint32(500 + i), Value: Value{Kind: KindScaled, Float: float64(i * 11)}}
	}
	a := &ASDU{Type: MMeNb, Sequence: true, COT: COT{Cause: CauseInrogen}, CommonAddr: 2, Objects: objs}
	b, err := a.Marshal(Standard)
	if err != nil {
		t.Fatal(err)
	}
	// SQ encoding stores the IOA once: 6 bytes DUI + 3 IOA + 10*3 elements.
	if want := 6 + 3 + 10*3; len(b) != want {
		t.Fatalf("sequence ASDU length = %d, want %d", len(b), want)
	}
	got, err := ParseASDU(b, Standard)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sequence || len(got.Objects) != 10 {
		t.Fatalf("got SQ=%v n=%d", got.Sequence, len(got.Objects))
	}
	for i, o := range got.Objects {
		if o.IOA != uint32(500+i) || o.Value.Float != float64(i*11) {
			t.Fatalf("object %d = %+v", i, o)
		}
	}
}

func TestASDUSequenceNonConsecutiveRejected(t *testing.T) {
	a := &ASDU{Type: MMeNb, Sequence: true, COT: COT{Cause: CauseInrogen}, CommonAddr: 2,
		Objects: []InfoObject{{IOA: 5}, {IOA: 9}}}
	if _, err := a.Marshal(Standard); err == nil {
		t.Fatal("non-consecutive sequence IOAs must fail")
	}
}

func TestASDUAllFixedTypesRoundTrip(t *testing.T) {
	// Every fixed-size type must round-trip its raw element bytes
	// under every profile.
	rng := rand.New(rand.NewSource(42))
	for _, typ := range SupportedTypeIDs() {
		size, fixed := typ.ElementSize()
		if !fixed {
			continue
		}
		for _, p := range CandidateProfiles {
			raw := make([]byte, size)
			for i := range raw {
				raw[i] = byte(rng.Intn(256))
			}
			// Keep any embedded CP56Time2a decodable. C_CS_NA_1's
			// entire element is the time tag.
			if typ.HasTimeTag() || typ == CCsNa {
				EncodeCP56Time2a(raw[size-7:], CP56Time2a{Time: time.Date(2025, 3, 9, 8, 7, 6, 0, time.UTC)})
			}
			ioa := uint32(1000)
			if typ == CIcNa || typ == CCsNa || typ == CRpNa || typ == CCiNa || typ == CRdNa || typ == MEiNa {
				ioa = 0
			}
			a := &ASDU{Type: typ, COT: COT{Cause: CauseActivation}, CommonAddr: 9,
				Objects: []InfoObject{{IOA: ioa, Value: Value{Kind: KindRaw}, Raw: raw}}}
			b, err := a.Marshal(p)
			if err != nil {
				t.Fatalf("%v/%v marshal: %v", typ, p, err)
			}
			got, err := ParseASDU(b, p)
			if err != nil {
				t.Fatalf("%v/%v parse: %v", typ, p, err)
			}
			if got.Type != typ || got.Objects[0].IOA != ioa {
				t.Fatalf("%v/%v: got %+v", typ, p, got)
			}
			if len(got.Objects[0].Raw) != size {
				t.Fatalf("%v/%v: raw size %d, want %d", typ, p, len(got.Objects[0].Raw), size)
			}
			for i := range raw {
				if got.Objects[0].Raw[i] != raw[i] {
					t.Fatalf("%v/%v: raw byte %d = %#x, want %#x", typ, p, i, got.Objects[0].Raw[i], raw[i])
				}
			}
		}
	}
}

func TestASDULengthMismatchRejected(t *testing.T) {
	a := NewMeasurement(MMeNc, 1, 44, Value{Kind: KindFloat, Float: 1}, CauseSpontaneous)
	b, err := a.Marshal(Standard)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate and extend: both must fail the exact-consumption check.
	if _, err := ParseASDU(b[:len(b)-1], Standard); err == nil {
		t.Error("truncated ASDU accepted")
	}
	if _, err := ParseASDU(append(append([]byte{}, b...), 0x00), Standard); err == nil {
		t.Error("over-long ASDU accepted")
	}
}

func TestASDUUnsupportedType(t *testing.T) {
	b := []byte{2 /* M_SP_TA_1: IEC 101 only */, 1, byte(CauseSpontaneous), 0, 1, 0, 1, 0, 0, 0}
	if _, err := ParseASDU(b, Standard); err == nil {
		t.Fatal("IEC 101-only type accepted")
	}
}

func TestASDUZeroObjects(t *testing.T) {
	b := []byte{byte(MMeNc), 0, byte(CauseSpontaneous), 0, 1, 0}
	if _, err := ParseASDU(b, Standard); err == nil {
		t.Fatal("zero-object ASDU accepted")
	}
	a := &ASDU{Type: MMeNc, COT: COT{Cause: CauseSpontaneous}, CommonAddr: 1}
	if _, err := a.Marshal(Standard); err == nil {
		t.Fatal("marshal of zero-object ASDU accepted")
	}
}

func TestIOAOverflowPerProfile(t *testing.T) {
	a := NewMeasurement(MMeNc, 1, 1<<17, Value{Kind: KindFloat}, CauseSpontaneous)
	if _, err := a.Marshal(LegacyIOA); err == nil {
		t.Error("IOA > 16 bits must not marshal with 2-octet IOA profile")
	}
	if _, err := a.Marshal(Standard); err != nil {
		t.Errorf("IOA within 24 bits must marshal: %v", err)
	}
}

func TestNormalizedValueQuantisation(t *testing.T) {
	check := func(raw int16) bool {
		want := float64(raw) / 32768
		a := NewMeasurement(MMeNa, 1, 9, Value{Kind: KindNormalized, Float: want}, CausePeriodic)
		b, err := a.Marshal(Standard)
		if err != nil {
			return false
		}
		got, err := ParseASDU(b, Standard)
		if err != nil {
			return false
		}
		return math.Abs(got.Objects[0].Value.Float-want) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledValueRoundTrip(t *testing.T) {
	check := func(raw int16) bool {
		a := NewMeasurement(MMeNb, 1, 9, Value{Kind: KindScaled, Float: float64(raw)}, CausePeriodic)
		b, err := a.Marshal(Standard)
		if err != nil {
			return false
		}
		got, err := ParseASDU(b, Standard)
		if err != nil {
			return false
		}
		return got.Objects[0].Value.Float == float64(raw)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShortFloatRoundTrip(t *testing.T) {
	check := func(f float32) bool {
		if math.IsNaN(float64(f)) {
			return true
		}
		a := NewSetpointFloat(1, 77, float64(f), CauseActivation)
		b, err := a.Marshal(Standard)
		if err != nil {
			return false
		}
		got, err := ParseASDU(b, Standard)
		if err != nil {
			return false
		}
		return float32(got.Objects[0].Value.Float) == f
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestQualityBits(t *testing.T) {
	q := Quality{Overflow: true, Blocked: true, Substituted: true, NotTopical: true, Invalid: true}
	a := NewMeasurement(MMeNc, 1, 5, Value{Kind: KindFloat, Float: 2.5, Quality: q}, CauseSpontaneous)
	got := roundTrip(t, a, Standard)
	if got.Objects[0].Value.Quality != q {
		t.Fatalf("quality = %+v, want %+v", got.Objects[0].Value.Quality, q)
	}
	if q.Good() {
		t.Error("all-bits quality reported Good")
	}
	if !(Quality{}).Good() {
		t.Error("zero quality not Good")
	}
}

func TestDoublePointBreakerStatus(t *testing.T) {
	for _, st := range []uint32{DoubleIntermediate, DoubleOff, DoubleOn, DoubleBad} {
		a := NewMeasurement(MDpNa, 1, 301, Value{Kind: KindDouble, Bits: st}, CauseSpontaneous)
		got := roundTrip(t, a, Standard)
		if got.Objects[0].Value.Bits != st {
			t.Errorf("status %d round-tripped as %d", st, got.Objects[0].Value.Bits)
		}
	}
}

func TestCOTFlagsRoundTrip(t *testing.T) {
	a := NewMeasurement(MMeNc, 1, 5, Value{Kind: KindFloat, Float: 1}, CauseActConfirm)
	a.COT.Negative = true
	a.COT.Test = true
	a.COT.Orig = 42
	got := roundTrip(t, a, Standard)
	if !got.COT.Negative || !got.COT.Test || got.COT.Orig != 42 {
		t.Fatalf("COT = %+v", got.COT)
	}
	// Legacy 1-octet COT drops the originator.
	got = roundTrip(t, a, LegacyCOT)
	if got.COT.Orig != 0 {
		t.Fatalf("legacy COT carried originator %d", got.COT.Orig)
	}
	if !got.COT.Negative || !got.COT.Test || got.COT.Cause != CauseActConfirm {
		t.Fatalf("legacy COT = %+v", got.COT)
	}
}

func TestSupportedTypeIDCount(t *testing.T) {
	// IEC 101 defines 127 type IDs from which IEC 104 supports 54.
	if got := len(SupportedTypeIDs()); got != 54 {
		t.Fatalf("supported type IDs = %d, want 54", got)
	}
	for _, bad := range []TypeID{0, 2, 41, 57, 65, 99, 104, 106, 108, 114, 119, 128} {
		if Supported(bad) {
			t.Errorf("type %d reported supported", bad)
		}
	}
}

func TestVariableSizeTypeRoundTrip(t *testing.T) {
	seg := []byte{0x01, 0x00, 0x01, 0x05, 0xDE, 0xAD, 0xBE, 0xEF, 0x99}
	a := &ASDU{Type: FSgNa, COT: COT{Cause: CauseFile}, CommonAddr: 1,
		Objects: []InfoObject{{IOA: 12, Value: Value{Kind: KindRaw}, Raw: seg}}}
	got := roundTrip(t, a, Standard)
	if got.Objects[0].IOA != 12 || len(got.Objects[0].Raw) != len(seg) {
		t.Fatalf("segment round-trip: %+v", got.Objects[0])
	}
}
