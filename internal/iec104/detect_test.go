package iec104

import (
	"testing"
	"time"
)

// buildFrame marshals one I-format measurement APDU under profile p.
func buildFrame(t *testing.T, p Profile, asdu *ASDU) []byte {
	t.Helper()
	b, err := NewI(1, 1, asdu).Marshal(p)
	if err != nil {
		t.Fatalf("marshal under %v: %v", p, err)
	}
	return b
}

func typicalMeasurement() *ASDU {
	return NewMeasurement(MMeTf, 5, 1201, Value{
		Kind: KindFloat, Float: 60.01, HasTime: true,
		Time: CP56Time2a{Time: time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)},
	}, CauseSpontaneous)
}

func TestDetectProfileStandard(t *testing.T) {
	frame := buildFrame(t, Standard, typicalMeasurement())
	got, results, err := DetectProfile(frame)
	if err != nil {
		t.Fatalf("detect: %v (results %+v)", err, results)
	}
	if got != Standard {
		t.Fatalf("detected %v, want standard", got)
	}
}

func TestDetectProfileLegacyCOT(t *testing.T) {
	// This is the O28/O53/O58 pathology: a 1-octet cause of
	// transmission. Wireshark's strict parse reads the common address
	// low byte as the originator and shifts everything after.
	frame := buildFrame(t, LegacyCOT, typicalMeasurement())
	got, _, err := DetectProfile(frame)
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	if got != LegacyCOT {
		t.Fatalf("detected %v, want legacy-cot8", got)
	}
}

func TestDetectProfileLegacyIOA(t *testing.T) {
	// O37's pathology: 2-octet information object addresses. Strict
	// parses swallow a value byte into the IOA, making measurements
	// look random.
	asdu := &ASDU{Type: MMeTf, COT: COT{Cause: CauseSpontaneous}, CommonAddr: 5,
		Objects: []InfoObject{
			{IOA: 101, Value: Value{Kind: KindFloat, Float: 117.8, HasTime: true,
				Time: CP56Time2a{Time: time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)}}},
			{IOA: 102, Value: Value{Kind: KindFloat, Float: 117.9, HasTime: true,
				Time: CP56Time2a{Time: time.Date(2026, 7, 5, 10, 0, 1, 0, time.UTC)}}},
			{IOA: 103, Value: Value{Kind: KindFloat, Float: 118.0, HasTime: true,
				Time: CP56Time2a{Time: time.Date(2026, 7, 5, 10, 0, 2, 0, time.UTC)}}},
		}}
	frame := buildFrame(t, LegacyIOA, asdu)
	got, results, err := DetectProfile(frame)
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	if got != LegacyIOA {
		t.Fatalf("detected %v, want legacy-ioa16; scores: %+v", got, results)
	}
}

func TestDetectProfileControlFramesAreStandard(t *testing.T) {
	frame, err := NewU(UTestFRAct).Marshal(Standard)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DetectProfile(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != Standard {
		t.Fatalf("U frame detected as %v", got)
	}
}

func TestDetectProfileGarbage(t *testing.T) {
	if _, _, err := DetectProfile([]byte{0x68, 0x08, 0x00, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage frame detected a profile")
	}
}

func TestTolerantParserLearnsPerEndpoint(t *testing.T) {
	tp := NewTolerantParser()

	legacy := buildFrame(t, LegacyCOT, typicalMeasurement())
	std := buildFrame(t, Standard, typicalMeasurement())

	// First frame from each endpoint triggers detection.
	if _, err := tp.Parse("10.0.0.28:2404", legacy); err != nil {
		t.Fatalf("legacy endpoint: %v", err)
	}
	if _, err := tp.Parse("10.0.0.1:2404", std); err != nil {
		t.Fatalf("standard endpoint: %v", err)
	}
	if p, ok := tp.ProfileFor("10.0.0.28:2404"); !ok || p != LegacyCOT {
		t.Fatalf("legacy endpoint profile = %v (%t)", p, ok)
	}
	if p, ok := tp.ProfileFor("10.0.0.1:2404"); !ok || p != Standard {
		t.Fatalf("standard endpoint profile = %v (%t)", p, ok)
	}

	detections := tp.Detections
	// Further frames from a known endpoint must use the cache.
	if _, err := tp.Parse("10.0.0.28:2404", legacy); err != nil {
		t.Fatal(err)
	}
	if tp.Detections != detections {
		t.Fatalf("cache miss: detections %d -> %d", detections, tp.Detections)
	}
}

func TestTolerantParserMultipleAPDUsPerSegment(t *testing.T) {
	tp := NewTolerantParser()
	var payload []byte
	payload = append(payload, buildFrame(t, LegacyCOT, typicalMeasurement())...)
	u, _ := NewU(UTestFRAct).Marshal(Standard)
	payload = append(payload, u...)
	payload = append(payload, buildFrame(t, LegacyCOT, typicalMeasurement())...)
	got, err := tp.Parse("o53", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d APDUs, want 3", len(got))
	}
	if got[1].Format != FormatU {
		t.Fatalf("middle APDU format = %v", got[1].Format)
	}
}

func TestStrictParserRejectsWhatTolerantAccepts(t *testing.T) {
	// The headline §6.1 result: 100% of frames from legacy outstations
	// are invalid for a strict parser but decodable by ours.
	frames := [][]byte{
		buildFrame(t, LegacyCOT, typicalMeasurement()),
		buildFrame(t, LegacyIOA, typicalMeasurement()),
	}
	for i, f := range frames {
		strictOK := false
		if a, _, err := ParseAPDU(f, Standard); err == nil {
			// A strict decode may accidentally "succeed"; it must then
			// look implausible (this mirrors the random-measurement
			// symptom the paper describes).
			if plausibility(a.ASDU, Standard) > 0 {
				strictOK = true
			}
		}
		if strictOK {
			t.Errorf("frame %d: strict parse produced a plausible result", i)
		}
		if _, _, err := DetectProfile(f); err != nil {
			t.Errorf("frame %d: tolerant detection failed: %v", i, err)
		}
	}
}

func TestSetProfilePinsDialects(t *testing.T) {
	tp := NewTolerantParser()
	tp.SetProfile("pinned", LegacyIOA)
	frame := buildFrame(t, LegacyIOA, typicalMeasurement())
	if _, err := tp.Parse("pinned", frame); err != nil {
		t.Fatal(err)
	}
	if tp.Detections != 0 {
		t.Fatalf("pinned endpoint triggered %d detections", tp.Detections)
	}
}
