package iec104

import (
	"strings"
	"testing"
)

func TestTypeIDDirections(t *testing.T) {
	monitor := []TypeID{MSpNa, MDpNa, MMeNc, MMeTf, MItTb, MEiNa}
	for _, ty := range monitor {
		if !ty.IsMonitor() {
			t.Errorf("%v not monitor-direction", ty)
		}
		if ty.IsCommand() {
			t.Errorf("%v claimed to be a command", ty)
		}
	}
	commands := []TypeID{CScNa, CDcNa, CSeNc, CSeTc, CIcNa, CCsNa, CRdNa, CRpNa, CTsTa}
	for _, ty := range commands {
		if !ty.IsCommand() {
			t.Errorf("%v not a command", ty)
		}
		if ty.IsMonitor() {
			t.Errorf("%v claimed monitor direction", ty)
		}
	}
	// Parameter and file types are neither.
	for _, ty := range []TypeID{PMeNa, FSgNa, FDrTa} {
		if ty.IsMonitor() || ty.IsCommand() {
			t.Errorf("%v misclassified", ty)
		}
	}
}

func TestTypeIDStrings(t *testing.T) {
	if MMeTf.Acronym() != "M_ME_TF_1" {
		t.Errorf("acronym %q", MMeTf.Acronym())
	}
	if !strings.Contains(MMeTf.Description(), "short floating point") {
		t.Errorf("description %q", MMeTf.Description())
	}
	// Unsupported types render placeholders, not panics.
	bad := TypeID(77)
	if bad.Acronym() != "TYPE_77" {
		t.Errorf("placeholder acronym %q", bad.Acronym())
	}
	if !strings.Contains(bad.Description(), "unsupported") {
		t.Errorf("placeholder description %q", bad.Description())
	}
	if bad.String() != "TYPE_77" {
		t.Errorf("String %q", bad.String())
	}
}

func TestFormatAndUFuncStrings(t *testing.T) {
	if FormatI.String() != "I" || FormatS.String() != "S" || FormatU.String() != "U" {
		t.Error("format strings broken")
	}
	if Format(9).String() != "Format(9)" {
		t.Errorf("unknown format: %q", Format(9).String())
	}
	names := map[UFunc]string{
		UStartDTAct: "STARTDT act", UStartDTCon: "STARTDT con",
		UStopDTAct: "STOPDT act", UStopDTCon: "STOPDT con",
		UTestFRAct: "TESTFR act", UTestFRCon: "TESTFR con",
	}
	for fn, want := range names {
		if fn.String() != want {
			t.Errorf("%d = %q, want %q", fn, fn.String(), want)
		}
	}
	if UFunc(3).String() != "UFunc(3)" {
		t.Errorf("unknown ufunc: %q", UFunc(3).String())
	}
}

func TestCauseStrings(t *testing.T) {
	cases := map[Cause]string{
		CausePeriodic:    "per/cyc",
		CauseSpontaneous: "spont",
		CauseInrogen:     "inrogen",
		Cause(25):        "inro5",
		Cause(60):        "cause(60)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d = %q, want %q", uint8(c), c.String(), want)
		}
	}
	if Cause(60).Valid() {
		t.Error("cause 60 reported valid")
	}
	if !Cause(25).Valid() {
		t.Error("group interrogation cause reported invalid")
	}
}

func TestProfileValidateAndString(t *testing.T) {
	bad := []Profile{
		{COTSize: 3, CommonAddrSize: 2, IOASize: 3},
		{COTSize: 2, CommonAddrSize: 3, IOASize: 3},
		{COTSize: 2, CommonAddrSize: 2, IOASize: 1},
		{COTSize: 0, CommonAddrSize: 0, IOASize: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %+v validated", p)
		}
	}
	names := map[string]Profile{
		"standard":          Standard,
		"legacy-cot8":       LegacyCOT,
		"legacy-ioa16":      LegacyIOA,
		"legacy-cot8-ioa16": LegacyCOTIOA,
		"legacy-full":       LegacyFull,
	}
	for want, p := range names {
		if p.String() != want {
			t.Errorf("%+v = %q, want %q", p, p.String(), want)
		}
	}
	odd := Profile{COTSize: 2, CommonAddrSize: 1, IOASize: 3}
	if !strings.Contains(odd.String(), "profile(") {
		t.Errorf("custom profile string %q", odd.String())
	}
	// Marshal rejects invalid profiles outright.
	a := NewMeasurement(MMeNc, 1, 1, Value{Kind: KindFloat}, CauseSpontaneous)
	if _, err := a.Marshal(Profile{COTSize: 9}); err == nil {
		t.Error("invalid profile accepted by Marshal")
	}
	if _, err := ParseASDU([]byte{13, 1, 3, 0, 1, 0}, Profile{IOASize: 9}); err == nil {
		t.Error("invalid profile accepted by ParseASDU")
	}
}

func TestSortTokens(t *testing.T) {
	toks := []Token{
		IToken(MMeTf),
		UToken(UTestFRCon),
		TokenS,
		UToken(UStartDTAct),
		IToken(MMeNc),
	}
	SortTokens(toks)
	want := []string{"S", "U1", "U32", "I13", "I36"}
	for i, w := range want {
		if toks[i].String() != w {
			t.Fatalf("position %d = %s, want %s (all: %v)", i, toks[i], w, toks)
		}
	}
}

func TestCommonAddrOverflowLegacyFull(t *testing.T) {
	a := NewMeasurement(MMeNc, 300, 1, Value{Kind: KindFloat}, CauseSpontaneous)
	if _, err := a.Marshal(LegacyFull); err == nil {
		t.Error("common address 300 accepted with 1-octet CA")
	}
}

func TestEncodeElementAllMonitorKinds(t *testing.T) {
	// Exercise the typed (non-raw) encode paths for each element
	// family and confirm they decode to the same value.
	cases := []struct {
		t TypeID
		v Value
	}{
		{MStNa, Value{Kind: KindStep, Float: -12, Bits: 1 << 8}},
		{MBoNa, Value{Kind: KindBitstring, Bits: 0xDEADBEEF}},
		{MMeNa, Value{Kind: KindNormalized, Float: 0.5}},
		{MMeNb, Value{Kind: KindScaled, Float: -1234}},
		{MItNa, Value{Kind: KindCounter, Bits: 99999, Quality: Quality{Invalid: true}}},
		{MPsNa, Value{Kind: KindBitstring, Bits: 0x0F0F}},
		{CScNa, Value{Kind: KindCommand, Bits: 0x81}},
		{CRcNa, Value{Kind: KindCommand, Bits: 0x02}},
		{CSeNa, Value{Kind: KindCommand, Float: 0.25}},
		{CSeNb, Value{Kind: KindCommand, Float: -77}},
		{CBoNa, Value{Kind: KindBitstring, Bits: 0x1234}},
		{CCiNa, Value{Kind: KindQualifier, Bits: 5}},
		{CRpNa, Value{Kind: KindQualifier, Bits: 1}},
		{PMeNa, Value{Kind: KindCommand, Float: 0.1}},
		{PMeNb, Value{Kind: KindCommand, Float: 42}},
		{PMeNc, Value{Kind: KindCommand, Float: 3.5}},
		{PAcNa, Value{Kind: KindQualifier, Bits: 1}},
	}
	for _, c := range cases {
		ioa := uint32(11)
		switch c.t {
		case CCiNa, CRpNa:
			ioa = 0
		}
		a := &ASDU{Type: c.t, COT: COT{Cause: CauseActivation}, CommonAddr: 2,
			Objects: []InfoObject{{IOA: ioa, Value: c.v}}}
		b, err := a.Marshal(Standard)
		if err != nil {
			t.Fatalf("%v: marshal: %v", c.t, err)
		}
		got, err := ParseASDU(b, Standard)
		if err != nil {
			t.Fatalf("%v: parse: %v", c.t, err)
		}
		gv := got.Objects[0].Value
		switch c.v.Kind {
		case KindBitstring:
			mask := uint32(0xFFFFFFFF)
			if gv.Bits&mask != c.v.Bits&mask {
				t.Errorf("%v: bits %#x, want %#x", c.t, gv.Bits, c.v.Bits)
			}
		case KindQualifier:
			if gv.Bits != c.v.Bits {
				t.Errorf("%v: qualifier %d, want %d", c.t, gv.Bits, c.v.Bits)
			}
		case KindStep:
			if gv.Float != c.v.Float || gv.Bits&(1<<8) != c.v.Bits&(1<<8) {
				t.Errorf("%v: step %v/%#x", c.t, gv.Float, gv.Bits)
			}
		case KindCounter:
			if gv.Bits != c.v.Bits || !gv.Quality.Invalid {
				t.Errorf("%v: counter %d invalid=%t", c.t, gv.Bits, gv.Quality.Invalid)
			}
		default:
			diff := gv.Float - c.v.Float
			if diff < 0 {
				diff = -diff
			}
			tol := 0.001
			if c.v.Kind == KindCommand && (c.t == CScNa || c.t == CRcNa) {
				// Command qualifier octet round-trips through Bits.
				if gv.Bits != c.v.Bits {
					t.Errorf("%v: command octet %#x, want %#x", c.t, gv.Bits, c.v.Bits)
				}
				continue
			}
			if diff > tol {
				t.Errorf("%v: value %v, want %v", c.t, gv.Float, c.v.Float)
			}
		}
	}
}

func TestClampNVA(t *testing.T) {
	a := NewMeasurement(MMeNa, 1, 2, Value{Kind: KindNormalized, Float: 5}, CausePeriodic)
	b, err := a.Marshal(Standard)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseASDU(b, Standard)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objects[0].Value.Float > 1 {
		t.Fatalf("over-range normalized value %v not clamped", got.Objects[0].Value.Float)
	}
	a = NewMeasurement(MMeNa, 1, 2, Value{Kind: KindNormalized, Float: -5}, CausePeriodic)
	b, _ = a.Marshal(Standard)
	got, _ = ParseASDU(b, Standard)
	if got.Objects[0].Value.Float < -1 {
		t.Fatalf("under-range normalized value %v not clamped", got.Objects[0].Value.Float)
	}
}
