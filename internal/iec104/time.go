package iec104

import (
	"errors"
	"time"
)

// ErrShortTime is returned when a time tag is truncated.
var ErrShortTime = errors.New("iec104: truncated time tag")

// CP56Time2a is the 7-octet absolute time tag used by the *_TB_1 /
// *_TD_1 / *_TE_1 / *_TF_1 types: milliseconds within the minute,
// minute (with invalid bit), hour (with summer-time bit), day of month
// plus day of week, month, and two-digit year.
type CP56Time2a struct {
	Time    time.Time
	Invalid bool // IV bit on the minute octet
	Summer  bool // SU bit on the hour octet
}

// EncodeCP56Time2a writes t into 7 octets of dst.
func EncodeCP56Time2a(dst []byte, t CP56Time2a) {
	ms := uint16(t.Time.Second()*1000 + t.Time.Nanosecond()/1e6)
	dst[0] = byte(ms)
	dst[1] = byte(ms >> 8)
	min := byte(t.Time.Minute()) & 0x3F
	if t.Invalid {
		min |= 0x80
	}
	dst[2] = min
	hour := byte(t.Time.Hour()) & 0x1F
	if t.Summer {
		hour |= 0x80
	}
	dst[3] = hour
	dow := byte(t.Time.Weekday())
	if dow == 0 {
		dow = 7 // the standard numbers Monday=1 .. Sunday=7
	}
	dst[4] = byte(t.Time.Day())&0x1F | dow<<5
	dst[5] = byte(t.Time.Month()) & 0x0F
	dst[6] = byte(t.Time.Year()%100) & 0x7F
}

// DecodeCP56Time2a parses a 7-octet CP56Time2a. Years 00-69 map to
// 2000-2069 and 70-99 to 1970-1999, matching common practice.
func DecodeCP56Time2a(b []byte) (CP56Time2a, error) {
	if len(b) < 7 {
		return CP56Time2a{}, ErrShortTime
	}
	ms := int(b[0]) | int(b[1])<<8
	if ms > 59999 {
		return CP56Time2a{}, errors.New("iec104: CP56Time2a milliseconds out of range")
	}
	minute := int(b[2] & 0x3F)
	if minute > 59 {
		return CP56Time2a{}, errors.New("iec104: CP56Time2a minute out of range")
	}
	hour := int(b[3] & 0x1F)
	if hour > 23 {
		return CP56Time2a{}, errors.New("iec104: CP56Time2a hour out of range")
	}
	day := int(b[4] & 0x1F)
	if day < 1 || day > 31 {
		return CP56Time2a{}, errors.New("iec104: CP56Time2a day out of range")
	}
	month := int(b[5] & 0x0F)
	if month < 1 || month > 12 {
		return CP56Time2a{}, errors.New("iec104: CP56Time2a month out of range")
	}
	yy := int(b[6] & 0x7F)
	year := 2000 + yy
	if yy >= 70 {
		year = 1900 + yy
	}
	t := time.Date(year, time.Month(month), day, hour, minute, ms/1000, ms%1000*1e6, time.UTC)
	return CP56Time2a{
		Time:    t,
		Invalid: b[2]&0x80 != 0,
		Summer:  b[3]&0x80 != 0,
	}, nil
}

// CP24Time2a is the 3-octet relative time tag (milliseconds + minute).
type CP24Time2a struct {
	Millis  uint16 // milliseconds within the minute, 0..59999
	Minute  uint8  // 0..59
	Invalid bool
}

// EncodeCP24Time2a writes t into 3 octets of dst.
func EncodeCP24Time2a(dst []byte, t CP24Time2a) {
	dst[0] = byte(t.Millis)
	dst[1] = byte(t.Millis >> 8)
	m := t.Minute & 0x3F
	if t.Invalid {
		m |= 0x80
	}
	dst[2] = m
}

// DecodeCP24Time2a parses a 3-octet CP24Time2a.
func DecodeCP24Time2a(b []byte) (CP24Time2a, error) {
	if len(b) < 3 {
		return CP24Time2a{}, ErrShortTime
	}
	return CP24Time2a{
		Millis:  uint16(b[0]) | uint16(b[1])<<8,
		Minute:  b[2] & 0x3F,
		Invalid: b[2]&0x80 != 0,
	}, nil
}
