package iec104

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Quality holds the quality descriptor bits shared by SIQ, DIQ and QDS.
type Quality struct {
	Overflow    bool // OV: value beyond measuring range
	Blocked     bool // BL: value blocked for transmission
	Substituted bool // SB: value set by hand
	NotTopical  bool // NT: value not refreshed recently
	Invalid     bool // IV: value unusable
}

func (q Quality) qdsByte() byte {
	var b byte
	if q.Overflow {
		b |= 0x01
	}
	if q.Blocked {
		b |= 0x10
	}
	if q.Substituted {
		b |= 0x20
	}
	if q.NotTopical {
		b |= 0x40
	}
	if q.Invalid {
		b |= 0x80
	}
	return b
}

func qualityFromByte(b byte) Quality {
	return Quality{
		Overflow:    b&0x01 != 0,
		Blocked:     b&0x10 != 0,
		Substituted: b&0x20 != 0,
		NotTopical:  b&0x40 != 0,
		Invalid:     b&0x80 != 0,
	}
}

// Good reports whether no quality flag is raised.
func (q Quality) Good() bool { return q == Quality{} }

// ValueKind says which fields of a Value are meaningful.
type ValueKind uint8

// Value kinds.
const (
	KindNone       ValueKind = iota // no information element (e.g. C_RD_NA_1)
	KindSingle                      // single-point status (Bits: 0/1)
	KindDouble                      // double-point status (Bits: 0..3)
	KindStep                        // step position (Float: -64..63, Transient flag in Bits bit 8)
	KindBitstring                   // 32-bit bitstring (Bits)
	KindNormalized                  // normalized measured value (Float: -1..+1)
	KindScaled                      // scaled measured value (Float: -32768..32767)
	KindFloat                       // IEEE 754 short float (Float)
	KindCounter                     // integrated total (Bits = count, Float mirrors it)
	KindCommand                     // command qualifier (Bits holds raw octet; Float the setpoint if any)
	KindQualifier                   // single qualifier octet (QOI/COI/QCC/QRP/...) in Bits
	KindRaw                         // undecoded element bytes retained in Raw only
)

// Value is the decoded information element of one information object.
// It is deliberately flat: the measurement pipeline consumes floats,
// status bits and time tags, and a flat struct keeps parsing
// allocation-free beyond the containing slice.
type Value struct {
	Kind    ValueKind
	Float   float64
	Bits    uint32
	Quality Quality
	HasTime bool
	Time    CP56Time2a
}

// InfoObject is one information object: an address plus its element.
type InfoObject struct {
	IOA   uint32
	Value Value
	// Raw keeps the undecoded element bytes (excluding the IOA) so
	// unsupported or variable-length types round-trip losslessly.
	Raw []byte
}

// elementLen returns the element size for t, using raw length for
// variable types when decoding sequences is impossible.
func decodeElement(t TypeID, b []byte) (Value, error) {
	v := Value{Kind: KindRaw}
	need, fixed := t.ElementSize()
	if fixed && len(b) < need {
		return v, fmt.Errorf("iec104: %v element truncated: need %d bytes, have %d", t, need, len(b))
	}
	timeAt := func(off int) error {
		ct, err := DecodeCP56Time2a(b[off:])
		if err != nil {
			return err
		}
		v.HasTime = true
		v.Time = ct
		return nil
	}
	switch t {
	case MSpNa, MSpTb:
		v.Kind = KindSingle
		v.Bits = uint32(b[0] & 0x01)
		v.Quality = qualityFromByte(b[0] & 0xF0)
		v.Float = float64(v.Bits)
		if t == MSpTb {
			if err := timeAt(1); err != nil {
				return v, err
			}
		}
	case MDpNa, MDpTb:
		v.Kind = KindDouble
		v.Bits = uint32(b[0] & 0x03)
		v.Quality = qualityFromByte(b[0] & 0xF0)
		v.Float = float64(v.Bits)
		if t == MDpTb {
			if err := timeAt(1); err != nil {
				return v, err
			}
		}
	case MStNa, MStTb:
		v.Kind = KindStep
		raw := b[0]
		val := int8(raw<<1) >> 1 // sign-extend the 7-bit value
		v.Float = float64(val)
		if raw&0x80 != 0 {
			v.Bits |= 1 << 8 // transient
		}
		v.Quality = qualityFromByte(b[1])
		if t == MStTb {
			if err := timeAt(2); err != nil {
				return v, err
			}
		}
	case MBoNa, MBoTb:
		v.Kind = KindBitstring
		v.Bits = binary.LittleEndian.Uint32(b)
		v.Quality = qualityFromByte(b[4])
		if t == MBoTb {
			if err := timeAt(5); err != nil {
				return v, err
			}
		}
	case MMeNa, MMeTd, MMeNd:
		v.Kind = KindNormalized
		v.Float = float64(int16(binary.LittleEndian.Uint16(b))) / 32768
		switch t {
		case MMeNa:
			v.Quality = qualityFromByte(b[2])
		case MMeTd:
			v.Quality = qualityFromByte(b[2])
			if err := timeAt(3); err != nil {
				return v, err
			}
		}
	case MMeNb, MMeTe:
		v.Kind = KindScaled
		v.Float = float64(int16(binary.LittleEndian.Uint16(b)))
		v.Quality = qualityFromByte(b[2])
		if t == MMeTe {
			if err := timeAt(3); err != nil {
				return v, err
			}
		}
	case MMeNc, MMeTf:
		v.Kind = KindFloat
		v.Float = float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
		v.Quality = qualityFromByte(b[4])
		if t == MMeTf {
			if err := timeAt(5); err != nil {
				return v, err
			}
		}
	case MItNa, MItTb:
		v.Kind = KindCounter
		v.Bits = binary.LittleEndian.Uint32(b)
		v.Float = float64(int32(v.Bits))
		// b[4] is the sequence/carry/adjust octet; keep IV in quality.
		v.Quality.Invalid = b[4]&0x80 != 0
		if t == MItTb {
			if err := timeAt(5); err != nil {
				return v, err
			}
		}
	case MPsNa:
		v.Kind = KindBitstring
		v.Bits = binary.LittleEndian.Uint32(b)
		v.Quality = qualityFromByte(b[4])
	case CScNa, CDcNa, CRcNa, CScTa, CDcTa, CRcTa:
		v.Kind = KindCommand
		v.Bits = uint32(b[0])
		v.Float = float64(b[0] & 0x03)
		if t.HasTimeTag() {
			if err := timeAt(1); err != nil {
				return v, err
			}
		}
	case CSeNa, CSeTa:
		v.Kind = KindCommand
		v.Float = float64(int16(binary.LittleEndian.Uint16(b))) / 32768
		v.Bits = uint32(b[2])
		if t == CSeTa {
			if err := timeAt(3); err != nil {
				return v, err
			}
		}
	case CSeNb, CSeTb:
		v.Kind = KindCommand
		v.Float = float64(int16(binary.LittleEndian.Uint16(b)))
		v.Bits = uint32(b[2])
		if t == CSeTb {
			if err := timeAt(3); err != nil {
				return v, err
			}
		}
	case CSeNc, CSeTc:
		v.Kind = KindCommand
		v.Float = float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
		v.Bits = uint32(b[4])
		if t == CSeTc {
			if err := timeAt(5); err != nil {
				return v, err
			}
		}
	case CBoNa, CBoTa:
		v.Kind = KindBitstring
		v.Bits = binary.LittleEndian.Uint32(b)
		if t == CBoTa {
			if err := timeAt(4); err != nil {
				return v, err
			}
		}
	case MEiNa, CIcNa, CCiNa, CRpNa, PAcNa:
		v.Kind = KindQualifier
		v.Bits = uint32(b[0])
	case CRdNa:
		v.Kind = KindNone
	case CCsNa:
		v.Kind = KindNone
		if err := timeAt(0); err != nil {
			return v, err
		}
	case CTsTa:
		v.Kind = KindBitstring
		v.Bits = uint32(binary.LittleEndian.Uint16(b))
		if err := timeAt(2); err != nil {
			return v, err
		}
	case PMeNa, PMeNb:
		v.Kind = KindCommand
		v.Float = float64(int16(binary.LittleEndian.Uint16(b)))
		if t == PMeNa {
			v.Float /= 32768
		}
		v.Bits = uint32(b[2])
	case PMeNc:
		v.Kind = KindCommand
		v.Float = float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
		v.Bits = uint32(b[4])
	default:
		// File-transfer and remaining types: keep raw bytes only.
		v.Kind = KindRaw
	}
	return v, nil
}

// encodeElement renders v for type t. For KindRaw values the raw bytes
// are written verbatim.
func encodeElement(t TypeID, v Value, raw []byte) ([]byte, error) {
	size, fixed := t.ElementSize()
	if !fixed || v.Kind == KindRaw {
		return raw, nil
	}
	b := make([]byte, size)
	putTime := func(off int) {
		EncodeCP56Time2a(b[off:], v.Time)
	}
	switch t {
	case MSpNa, MSpTb:
		b[0] = byte(v.Bits&0x01) | v.Quality.qdsByte()&0xF0
		if t == MSpTb {
			putTime(1)
		}
	case MDpNa, MDpTb:
		b[0] = byte(v.Bits&0x03) | v.Quality.qdsByte()&0xF0
		if t == MDpTb {
			putTime(1)
		}
	case MStNa, MStTb:
		b[0] = byte(int8(v.Float)) & 0x7F
		if v.Bits&(1<<8) != 0 {
			b[0] |= 0x80
		}
		b[1] = v.Quality.qdsByte()
		if t == MStTb {
			putTime(2)
		}
	case MBoNa, MBoTb:
		binary.LittleEndian.PutUint32(b, v.Bits)
		b[4] = v.Quality.qdsByte()
		if t == MBoTb {
			putTime(5)
		}
	case MMeNa, MMeTd, MMeNd:
		binary.LittleEndian.PutUint16(b, uint16(int16(clampNVA(v.Float)*32768)))
		switch t {
		case MMeNa:
			b[2] = v.Quality.qdsByte()
		case MMeTd:
			b[2] = v.Quality.qdsByte()
			putTime(3)
		}
	case MMeNb, MMeTe:
		binary.LittleEndian.PutUint16(b, uint16(int16(v.Float)))
		b[2] = v.Quality.qdsByte()
		if t == MMeTe {
			putTime(3)
		}
	case MMeNc, MMeTf:
		binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v.Float)))
		b[4] = v.Quality.qdsByte()
		if t == MMeTf {
			putTime(5)
		}
	case MItNa, MItTb:
		binary.LittleEndian.PutUint32(b, v.Bits)
		if v.Quality.Invalid {
			b[4] |= 0x80
		}
		if t == MItTb {
			putTime(5)
		}
	case MPsNa:
		binary.LittleEndian.PutUint32(b, v.Bits)
		b[4] = v.Quality.qdsByte()
	case CScNa, CDcNa, CRcNa, CScTa, CDcTa, CRcTa:
		b[0] = byte(v.Bits)
		if t.HasTimeTag() {
			putTime(1)
		}
	case CSeNa, CSeTa:
		binary.LittleEndian.PutUint16(b, uint16(int16(clampNVA(v.Float)*32768)))
		b[2] = byte(v.Bits)
		if t == CSeTa {
			putTime(3)
		}
	case CSeNb, CSeTb:
		binary.LittleEndian.PutUint16(b, uint16(int16(v.Float)))
		b[2] = byte(v.Bits)
		if t == CSeTb {
			putTime(3)
		}
	case CSeNc, CSeTc:
		binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v.Float)))
		b[4] = byte(v.Bits)
		if t == CSeTc {
			putTime(5)
		}
	case CBoNa, CBoTa:
		binary.LittleEndian.PutUint32(b, v.Bits)
		if t == CBoTa {
			putTime(4)
		}
	case MEiNa, CIcNa, CCiNa, CRpNa, PAcNa:
		b[0] = byte(v.Bits)
	case CRdNa:
		// zero-length element
	case CCsNa:
		putTime(0)
	case CTsTa:
		binary.LittleEndian.PutUint16(b, uint16(v.Bits))
		putTime(2)
	case PMeNa, PMeNb:
		f := v.Float
		if t == PMeNa {
			f = clampNVA(f) * 32768
		}
		binary.LittleEndian.PutUint16(b, uint16(int16(f)))
		b[2] = byte(v.Bits)
	case PMeNc:
		binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v.Float)))
		b[4] = byte(v.Bits)
	default:
		return nil, fmt.Errorf("iec104: cannot encode elements of type %v from a Value; supply Raw bytes", t)
	}
	return b, nil
}

// clampNVA keeps a normalized value inside the representable range
// [-1, 1-2^-15].
func clampNVA(f float64) float64 {
	const max = 1 - 1.0/32768
	if f > max {
		return max
	}
	if f < -1 {
		return -1
	}
	return f
}

// QOIStation is the qualifier of a (general) station interrogation.
const QOIStation = 20

// Double-point status values. The paper's Fig. 20 shows a breaker
// status changing from 0 to 2; IEC 104 double points encode
// intermediate (0), off (1), on (2) and indeterminate (3).
const (
	DoubleIntermediate = 0
	DoubleOff          = 1
	DoubleOn           = 2
	DoubleBad          = 3
)
