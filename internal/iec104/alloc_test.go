package iec104

import "testing"

// buildIFrame returns a marshalled I-format APDU carrying one float
// measurement — the shape that dominates real SCADA captures and the
// pipeline's hot parse path.
func buildIFrame(t *testing.T) []byte {
	t.Helper()
	asdu := NewMeasurement(MMeNc, 1, 100, Value{Kind: KindFloat, Float: 60.0}, CauseSpontaneous)
	b, err := NewI(7, 3, asdu).Marshal(Standard)
	if err != nil {
		t.Fatalf("marshal I-frame: %v", err)
	}
	return b
}

// TestParseAPDUAllocCeiling pins the copying compatibility API's cost:
// one APDU is four allocations (ASDU struct, Objects slice, Raw copy,
// element decode). A regression here means the convenience path got
// more expensive, not just the hot path.
func TestParseAPDUAllocCeiling(t *testing.T) {
	frame := buildIFrame(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := ParseAPDU(frame, Standard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("ParseAPDU allocations per frame = %.1f, want <= 4", allocs)
	}
}

// TestParseAPDUIntoZeroAlloc pins the scratch-reusing hot path at zero
// steady-state allocations: after one warm-up call sizes the Objects
// slice, re-parsing into the same scratch with aliasing enabled must
// not touch the heap at all.
func TestParseAPDUIntoZeroAlloc(t *testing.T) {
	frame := buildIFrame(t)
	var apdu APDU
	var asdu ASDU
	if _, err := ParseAPDUInto(&apdu, &asdu, frame, Standard, true); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseAPDUInto(&apdu, &asdu, frame, Standard, true); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ParseAPDUInto allocations per frame = %.1f, want 0", allocs)
	}
}

// TestTolerantParseFrameIntoZeroAlloc pins the endpoint-cached tolerant
// parser at zero steady-state allocations once the endpoint's profile
// has been detected and cached.
func TestTolerantParseFrameIntoZeroAlloc(t *testing.T) {
	frame := buildIFrame(t)
	tp := NewTolerantParser()
	var apdu APDU
	var asdu ASDU
	if _, err := tp.ParseFrameInto("10.0.0.1:2404", frame, &apdu, &asdu); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := tp.ParseFrameInto("10.0.0.1:2404", frame, &apdu, &asdu); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ParseFrameInto allocations per frame = %.1f, want 0", allocs)
	}
}
