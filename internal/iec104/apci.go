package iec104

import (
	"errors"
	"fmt"
)

// StartByte opens every APCI. The standard fixes it at 0x68.
const StartByte = 0x68

// MaxAPDULen is the maximum value of the APCI length octet: the length
// of control field plus ASDU (everything after the length octet).
const MaxAPDULen = 253

// Format distinguishes the three APDU formats of IEC 104.
type Format uint8

// APDU formats.
const (
	FormatI Format = iota // numbered information transfer
	FormatS               // numbered supervisory (acknowledge)
	FormatU               // unnumbered control
)

func (f Format) String() string {
	switch f {
	case FormatI:
		return "I"
	case FormatS:
		return "S"
	case FormatU:
		return "U"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// UFunc identifies the six U-format control functions. The value equals
// the control field's first octet shifted right by two, which is also
// the numeric suffix the paper uses for its APDU tokens (U1 = STARTDT
// act ... U32 = TESTFR con).
type UFunc uint8

// U-format functions.
const (
	UStartDTAct UFunc = 1 << iota // STARTDT act: start transfer of I APDUs
	UStartDTCon                   // STARTDT con: acknowledgement
	UStopDTAct                    // STOPDT act: stop transfer of I APDUs
	UStopDTCon                    // STOPDT con: acknowledgement
	UTestFRAct                    // TESTFR act: keep-alive / test frame
	UTestFRCon                    // TESTFR con: acknowledgement
)

func (u UFunc) String() string {
	switch u {
	case UStartDTAct:
		return "STARTDT act"
	case UStartDTCon:
		return "STARTDT con"
	case UStopDTAct:
		return "STOPDT act"
	case UStopDTCon:
		return "STOPDT con"
	case UTestFRAct:
		return "TESTFR act"
	case UTestFRCon:
		return "TESTFR con"
	}
	return fmt.Sprintf("UFunc(%d)", uint8(u))
}

// APDU is one Application Protocol Data Unit: the APCI control
// information plus, for I-format frames, an ASDU payload.
type APDU struct {
	Format Format

	// SendSeq and RecvSeq are the 15-bit N(S) and N(R) sequence
	// numbers. SendSeq is meaningful only for I-format; RecvSeq for
	// I- and S-format.
	SendSeq uint16
	RecvSeq uint16

	// U is the control function of a U-format frame.
	U UFunc

	// ASDU carries the application payload of an I-format frame.
	ASDU *ASDU
}

// Parse errors.
var (
	ErrShortFrame   = errors.New("iec104: frame shorter than APCI")
	ErrBadStartByte = errors.New("iec104: missing 0x68 start byte")
	ErrBadLength    = errors.New("iec104: APCI length octet out of range or beyond buffer")
	ErrBadControl   = errors.New("iec104: malformed control field")
	ErrTrailing     = errors.New("iec104: trailing bytes after ASDU")
)

// EncodeAPCI writes the 6-octet APCI for the APDU header into dst, which
// must have room for 6 bytes. asduLen is the length of the ASDU that
// will follow (0 for S and U frames). It returns the total APDU length
// including the start and length octets.
func (a *APDU) EncodeAPCI(dst []byte, asduLen int) (int, error) {
	if len(dst) < 6 {
		return 0, ErrShortFrame
	}
	if asduLen < 0 || asduLen+4 > MaxAPDULen {
		return 0, fmt.Errorf("iec104: ASDU length %d overflows APCI length octet", asduLen)
	}
	dst[0] = StartByte
	dst[1] = byte(4 + asduLen)
	switch a.Format {
	case FormatI:
		dst[2] = byte(a.SendSeq<<1) & 0xFE
		dst[3] = byte(a.SendSeq >> 7)
		dst[4] = byte(a.RecvSeq<<1) & 0xFE
		dst[5] = byte(a.RecvSeq >> 7)
	case FormatS:
		dst[2] = 0x01
		dst[3] = 0
		dst[4] = byte(a.RecvSeq<<1) & 0xFE
		dst[5] = byte(a.RecvSeq >> 7)
	case FormatU:
		switch a.U {
		case UStartDTAct, UStartDTCon, UStopDTAct, UStopDTCon, UTestFRAct, UTestFRCon:
		default:
			return 0, fmt.Errorf("iec104: invalid U function %#x", uint8(a.U))
		}
		dst[2] = byte(a.U)<<2 | 0x03
		dst[3] = 0
		dst[4] = 0
		dst[5] = 0
	default:
		return 0, fmt.Errorf("iec104: invalid format %v", a.Format)
	}
	return 6 + asduLen, nil
}

// Marshal serializes the full APDU (APCI plus ASDU, if any) using the
// given profile for the ASDU field sizes.
func (a *APDU) Marshal(p Profile) ([]byte, error) {
	var asduBytes []byte
	if a.Format == FormatI {
		if a.ASDU == nil {
			return nil, errors.New("iec104: I-format APDU requires an ASDU")
		}
		var err error
		asduBytes, err = a.ASDU.Marshal(p)
		if err != nil {
			return nil, err
		}
	} else if a.ASDU != nil {
		return nil, fmt.Errorf("iec104: %v-format APDU must not carry an ASDU", a.Format)
	}
	buf := make([]byte, 6+len(asduBytes))
	if _, err := a.EncodeAPCI(buf, len(asduBytes)); err != nil {
		return nil, err
	}
	copy(buf[6:], asduBytes)
	return buf, nil
}

// ParseAPDU decodes a single APDU from the front of data using profile p
// and returns it together with the number of bytes consumed. The result
// owns all of its memory; hot paths should prefer ParseAPDUInto.
func ParseAPDU(data []byte, p Profile) (*APDU, int, error) {
	a := &APDU{}
	n, err := ParseAPDUInto(a, nil, data, p, false)
	if err != nil {
		return nil, 0, err
	}
	return a, n, nil
}

// ParseAPDUInto decodes a single APDU from the front of data into the
// caller-owned dst, returning the number of bytes consumed. For
// I-format frames the payload is decoded into scratch (reusing its
// Objects slice across calls) and dst.ASDU is pointed at it; for S/U
// frames dst.ASDU is nil. With alias true the decoded object Raw bytes
// alias data (see ParseASDUInto); either way the decoded APDU is only
// valid until dst/scratch are reused, which is what makes repeated calls
// with the same pair allocation-free.
func ParseAPDUInto(dst *APDU, scratch *ASDU, data []byte, p Profile, alias bool) (int, error) {
	if len(data) < 6 {
		return 0, ErrShortFrame
	}
	if data[0] != StartByte {
		return 0, ErrBadStartByte
	}
	apduLen := int(data[1])
	if apduLen < 4 || 2+apduLen > len(data) {
		return 0, ErrBadLength
	}
	total := 2 + apduLen
	cf := data[2:6]
	*dst = APDU{}
	a := dst
	switch {
	case cf[0]&0x01 == 0: // I format
		a.Format = FormatI
		a.SendSeq = uint16(cf[0])>>1 | uint16(cf[1])<<7
		a.RecvSeq = uint16(cf[2])>>1 | uint16(cf[3])<<7
		if scratch == nil {
			scratch = &ASDU{}
		}
		if err := ParseASDUInto(scratch, data[6:total], p, alias); err != nil {
			return 0, err
		}
		a.ASDU = scratch
	case cf[0]&0x03 == 0x01: // S format
		a.Format = FormatS
		if apduLen != 4 {
			return 0, fmt.Errorf("%w: S-format APDU with ASDU bytes", ErrBadControl)
		}
		a.RecvSeq = uint16(cf[2])>>1 | uint16(cf[3])<<7
	default: // U format (low two bits 11)
		a.Format = FormatU
		if apduLen != 4 {
			return 0, fmt.Errorf("%w: U-format APDU with ASDU bytes", ErrBadControl)
		}
		u := UFunc(cf[0] >> 2)
		switch u {
		case UStartDTAct, UStartDTCon, UStopDTAct, UStopDTCon, UTestFRAct, UTestFRCon:
			a.U = u
		default:
			return 0, fmt.Errorf("%w: U control octet %#x", ErrBadControl, cf[0])
		}
		if cf[1] != 0 || cf[2] != 0 || cf[3] != 0 {
			return 0, fmt.Errorf("%w: nonzero U padding", ErrBadControl)
		}
	}
	return total, nil
}

// ParseAPDUs decodes every APDU packed into one TCP payload. IEC 104
// permits multiple APDUs per segment; the tap in the paper routinely
// captured such packets. On error it returns the APDUs decoded so far
// along with the error and the offset at which decoding failed.
func ParseAPDUs(data []byte, p Profile) ([]*APDU, int, error) {
	var out []*APDU
	off := 0
	for off < len(data) {
		a, n, err := ParseAPDU(data[off:], p)
		if err != nil {
			return out, off, err
		}
		out = append(out, a)
		off += n
	}
	return out, off, nil
}

// Token returns the paper's tokenisation of this APDU for N-gram /
// Markov-chain modelling (§6.3.1, Table 4): "S" for S-format, "U<n>"
// where n = control octet >> 2 for U-format, and "I<typeid>" for
// I-format frames.
func (a *APDU) Token() Token {
	switch a.Format {
	case FormatS:
		return TokenS
	case FormatU:
		return UToken(a.U)
	default:
		var t TypeID
		if a.ASDU != nil {
			t = a.ASDU.Type
		}
		return IToken(t)
	}
}

// NewS builds an S-format acknowledgement carrying recvSeq.
func NewS(recvSeq uint16) *APDU { return &APDU{Format: FormatS, RecvSeq: recvSeq} }

// NewU builds a U-format control frame.
func NewU(fn UFunc) *APDU { return &APDU{Format: FormatU, U: fn} }

// NewI builds an I-format frame around asdu with the given sequence
// numbers.
func NewI(sendSeq, recvSeq uint16, asdu *ASDU) *APDU {
	return &APDU{Format: FormatI, SendSeq: sendSeq, RecvSeq: recvSeq, ASDU: asdu}
}
