package iec104

import (
	"testing"

	"uncharted/internal/protocol"
)

// The protocol package cannot import iec104, so its IEC 104 constants
// and command table are written out by hand there. These tests pin the
// two copies together: if either side drifts, serialized profiles and
// the IDS severity ladder silently change meaning.

func TestProtocolKindsMatchFormats(t *testing.T) {
	if protocol.KindIEC104I != uint8(FormatI) ||
		protocol.KindIEC104S != uint8(FormatS) ||
		protocol.KindIEC104U != uint8(FormatU) {
		t.Fatalf("protocol kinds (%d,%d,%d) diverged from iec104 formats (%d,%d,%d)",
			protocol.KindIEC104I, protocol.KindIEC104S, protocol.KindIEC104U,
			FormatI, FormatS, FormatU)
	}
	if protocol.IEC104 != 0 {
		t.Fatal("protocol.IEC104 must be the zero ID so a zero Token is an IEC 104 token")
	}
}

func TestProtocolIsCommandMatchesTypeID(t *testing.T) {
	for n := 0; n < 256; n++ {
		typ := TypeID(n)
		tok := IToken(typ)
		if got, want := tok.IsCommand(), typ.IsCommand(); got != want {
			t.Errorf("TypeID %d: protocol IsCommand = %v, iec104 = %v", n, got, want)
		}
	}
	// S and U tokens are never commands regardless of code.
	if TokenS.IsCommand() || TokenTestFRAct.IsCommand() {
		t.Error("S/U tokens must not be commands")
	}
}

func TestProtocolParseTokenMatchesIEC104(t *testing.T) {
	// Every valid IEC 104 token string must decode identically through
	// the dialect-neutral parser (the drift codec uses it).
	toks := []Token{TokenS, TokenStartDTAct, TokenStartDTCon, TokenStopDTAct,
		TokenStopDTCon, TokenTestFRAct, TokenTestFRCon}
	for n := 1; n <= 127; n++ {
		toks = append(toks, IToken(TypeID(n)))
	}
	for _, tok := range toks {
		got, err := protocol.ParseToken(tok.String())
		if err != nil || got != tok {
			t.Fatalf("protocol.ParseToken(%q) = %+v, %v; want %+v", tok, got, err, tok)
		}
	}
}
