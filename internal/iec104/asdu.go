package iec104

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ASDU parse errors.
var (
	ErrShortASDU       = errors.New("iec104: truncated ASDU")
	ErrUnsupportedType = errors.New("iec104: unsupported type identification")
	ErrObjectCount     = errors.New("iec104: object count does not match ASDU length")
	ErrNoObjects       = errors.New("iec104: ASDU carries zero information objects")
)

// ASDU is an Application Service Data Unit: the data unit identifier
// (type, variable structure qualifier, cause of transmission, common
// address) followed by one or more information objects.
type ASDU struct {
	Type TypeID
	// Sequence is the SQ bit of the variable structure qualifier.
	// When set, a single IOA is followed by a run of elements at
	// consecutive addresses.
	Sequence   bool
	COT        COT
	CommonAddr uint16
	Objects    []InfoObject
}

// Marshal serializes the ASDU using profile p. The number of objects
// must fit the 7-bit count of the variable structure qualifier.
func (a *ASDU) Marshal(p Profile) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(a.Objects) == 0 {
		return nil, ErrNoObjects
	}
	if len(a.Objects) > 127 {
		return nil, fmt.Errorf("iec104: %d objects exceed the 7-bit VSQ count", len(a.Objects))
	}
	if !Supported(a.Type) {
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedType, uint8(a.Type))
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(a.Type))
	vsq := byte(len(a.Objects))
	if a.Sequence {
		vsq |= 0x80
	}
	buf = append(buf, vsq)
	var cot [2]byte
	n := a.COT.encode(cot[:], p.COTSize)
	buf = append(buf, cot[:n]...)
	if p.CommonAddrSize == 2 {
		buf = append(buf, byte(a.CommonAddr), byte(a.CommonAddr>>8))
	} else {
		if a.CommonAddr > 0xFF {
			return nil, fmt.Errorf("iec104: common address %d overflows 1 octet", a.CommonAddr)
		}
		buf = append(buf, byte(a.CommonAddr))
	}
	appendIOA := func(ioa uint32) error {
		if ioa > p.maxIOA() {
			return fmt.Errorf("iec104: IOA %d overflows %d octets", ioa, p.IOASize)
		}
		buf = append(buf, byte(ioa), byte(ioa>>8))
		if p.IOASize == 3 {
			buf = append(buf, byte(ioa>>16))
		}
		return nil
	}
	if a.Sequence {
		if err := appendIOA(a.Objects[0].IOA); err != nil {
			return nil, err
		}
		for i, obj := range a.Objects {
			if obj.IOA != a.Objects[0].IOA+uint32(i) {
				return nil, fmt.Errorf("iec104: sequence object %d has non-consecutive IOA %d", i, obj.IOA)
			}
			el, err := encodeElement(a.Type, obj.Value, obj.Raw)
			if err != nil {
				return nil, err
			}
			buf = append(buf, el...)
		}
	} else {
		for _, obj := range a.Objects {
			if err := appendIOA(obj.IOA); err != nil {
				return nil, err
			}
			el, err := encodeElement(a.Type, obj.Value, obj.Raw)
			if err != nil {
				return nil, err
			}
			buf = append(buf, el...)
		}
	}
	return buf, nil
}

// ParseASDU decodes an ASDU from data using profile p. The whole buffer
// must be consumed exactly; trailing or missing bytes are errors, which
// is what lets DetectProfile discriminate dialects. The result owns all
// of its memory (object Raw bytes are copied out of data).
func ParseASDU(data []byte, p Profile) (*ASDU, error) {
	a := &ASDU{}
	if err := ParseASDUInto(a, data, p, false); err != nil {
		return nil, err
	}
	return a, nil
}

// ParseASDUInto decodes an ASDU from data into dst, reusing dst's
// Objects slice (grown once to the working-set size, then reused across
// frames with zero allocation). When alias is true, object Raw slices
// alias data instead of being copied: the decoded ASDU is then only
// valid until data's buffer is reused, which is the contract the
// analyzer's scratch-parse hot path runs under. When alias is false the
// result owns all of its memory, like ParseASDU.
func ParseASDUInto(dst *ASDU, data []byte, p Profile, alias bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	duiLen := 2 + p.COTSize + p.CommonAddrSize
	if len(data) < duiLen {
		return ErrShortASDU
	}
	a := dst
	*a = ASDU{Type: TypeID(data[0]), Objects: dst.Objects[:0]}
	if !Supported(a.Type) {
		return fmt.Errorf("%w: %d", ErrUnsupportedType, data[0])
	}
	count := int(data[1] & 0x7F)
	a.Sequence = data[1]&0x80 != 0
	if count == 0 {
		return ErrNoObjects
	}
	var err error
	a.COT, err = decodeCOT(data[2:], p.COTSize)
	if err != nil {
		return err
	}
	if !a.COT.Cause.Valid() {
		return fmt.Errorf("iec104: invalid cause of transmission %d", uint8(a.COT.Cause))
	}
	off := 2 + p.COTSize
	if p.CommonAddrSize == 2 {
		a.CommonAddr = binary.LittleEndian.Uint16(data[off:])
	} else {
		a.CommonAddr = uint16(data[off])
	}
	off += p.CommonAddrSize
	body := data[off:]

	rawBytes := func(b []byte) []byte {
		if alias {
			return b
		}
		return append([]byte(nil), b...)
	}

	elemSize, fixed := a.Type.ElementSize()
	if !fixed {
		// Variable-size types (file segments): retain raw bytes as a
		// single object. The length octet inside the element governs
		// its size; we keep the whole remainder.
		if a.Sequence || count != 1 {
			return fmt.Errorf("iec104: variable-size type %v must carry one object", a.Type)
		}
		if len(body) < p.IOASize {
			return ErrShortASDU
		}
		a.Objects = append(a.Objects, InfoObject{
			IOA:   decodeIOA(body, p.IOASize),
			Value: Value{Kind: KindRaw},
			Raw:   rawBytes(body[p.IOASize:]),
		})
		return nil
	}

	var need int
	if a.Sequence {
		need = p.IOASize + count*elemSize
	} else {
		need = count * (p.IOASize + elemSize)
	}
	if len(body) != need {
		return fmt.Errorf("%w: %v x%d (SQ=%t) needs %d body bytes, have %d",
			ErrObjectCount, a.Type, count, a.Sequence, need, len(body))
	}

	if a.Sequence {
		base := decodeIOA(body, p.IOASize)
		pos := p.IOASize
		for i := 0; i < count; i++ {
			el := body[pos : pos+elemSize]
			v, err := decodeElement(a.Type, el)
			if err != nil {
				return err
			}
			a.Objects = append(a.Objects, InfoObject{
				IOA:   base + uint32(i),
				Value: v,
				Raw:   rawBytes(el),
			})
			pos += elemSize
		}
	} else {
		pos := 0
		for i := 0; i < count; i++ {
			ioa := decodeIOA(body[pos:], p.IOASize)
			pos += p.IOASize
			el := body[pos : pos+elemSize]
			v, err := decodeElement(a.Type, el)
			if err != nil {
				return err
			}
			a.Objects = append(a.Objects, InfoObject{
				IOA:   ioa,
				Value: v,
				Raw:   rawBytes(el),
			})
			pos += elemSize
		}
	}
	return nil
}

func decodeIOA(b []byte, size int) uint32 {
	ioa := uint32(b[0]) | uint32(b[1])<<8
	if size == 3 {
		ioa |= uint32(b[2]) << 16
	}
	return ioa
}

// NewMeasurement builds a single-object measurement ASDU of type t
// carrying value v at address ioa with the given cause.
func NewMeasurement(t TypeID, commonAddr uint16, ioa uint32, v Value, cause Cause) *ASDU {
	return &ASDU{
		Type:       t,
		COT:        COT{Cause: cause},
		CommonAddr: commonAddr,
		Objects:    []InfoObject{{IOA: ioa, Value: v}},
	}
}

// NewInterrogation builds a general interrogation command (C_IC_NA_1,
// the I100 token of the paper) for the given station.
func NewInterrogation(commonAddr uint16, cause Cause) *ASDU {
	return &ASDU{
		Type:       CIcNa,
		COT:        COT{Cause: cause},
		CommonAddr: commonAddr,
		Objects:    []InfoObject{{IOA: 0, Value: Value{Kind: KindQualifier, Bits: QOIStation}}},
	}
}

// NewSetpointFloat builds a short-float set point command (C_SE_NC_1,
// the I50 token: AGC setpoints in the paper's network).
func NewSetpointFloat(commonAddr uint16, ioa uint32, setpoint float64, cause Cause) *ASDU {
	return &ASDU{
		Type:       CSeNc,
		COT:        COT{Cause: cause},
		CommonAddr: commonAddr,
		Objects:    []InfoObject{{IOA: ioa, Value: Value{Kind: KindCommand, Float: setpoint}}},
	}
}
