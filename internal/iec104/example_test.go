package iec104_test

import (
	"fmt"

	"uncharted/internal/iec104"
)

// Marshal a measurement the way an outstation reports it, then decode
// it back.
func Example() {
	asdu := iec104.NewMeasurement(
		iec104.MMeNc, // M_ME_NC_1: measured value, short float (I13)
		29,           // common (station) address
		1001,         // information object address
		iec104.Value{Kind: iec104.KindFloat, Float: 117.5},
		iec104.CauseSpontaneous,
	)
	frame, err := iec104.NewI(0, 0, asdu).Marshal(iec104.Standard)
	if err != nil {
		panic(err)
	}
	apdu, _, err := iec104.ParseAPDU(frame, iec104.Standard)
	if err != nil {
		panic(err)
	}
	obj := apdu.ASDU.Objects[0]
	fmt.Printf("%s %s ioa=%d value=%.1f token=%s\n",
		apdu.ASDU.Type, apdu.ASDU.COT.Cause, obj.IOA, obj.Value.Float, apdu.Token())
	// Output: M_ME_NC_1 spont ioa=1001 value=117.5 token=I13
}

// Decode a frame whose dialect is unknown: the tolerant parser detects
// the legacy IEC 101 field sizes that broke strict parsers in the
// paper's captures.
func ExampleDetectProfile() {
	asdu := iec104.NewMeasurement(iec104.MMeNc, 9, 2001,
		iec104.Value{Kind: iec104.KindFloat, Float: 60.01}, iec104.CausePeriodic)
	// The misconfigured outstation emits a 1-octet cause of
	// transmission (IEC 101 style).
	frame, err := iec104.NewI(0, 0, asdu).Marshal(iec104.LegacyCOT)
	if err != nil {
		panic(err)
	}

	if _, _, err := iec104.ParseAPDU(frame, iec104.Standard); err != nil {
		fmt.Println("strict parser: rejected")
	}
	profile, _, err := iec104.DetectProfile(frame)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tolerant parser: %s\n", profile)
	// Output:
	// strict parser: rejected
	// tolerant parser: legacy-cot8
}

// A TolerantParser learns each endpoint's dialect once and reuses it.
func ExampleTolerantParser() {
	tp := iec104.NewTolerantParser()
	asdu := iec104.NewMeasurement(iec104.MMeTf, 37, 900,
		iec104.Value{Kind: iec104.KindFloat, Float: 132.4, HasTime: true},
		iec104.CauseSpontaneous)
	frame, _ := iec104.NewI(0, 0, asdu).Marshal(iec104.LegacyIOA)

	if _, err := tp.Parse("10.0.1.47:2404", frame); err != nil {
		panic(err)
	}
	p, _ := tp.ProfileFor("10.0.1.47:2404")
	fmt.Println(p)
	// Output: legacy-ioa16
}
