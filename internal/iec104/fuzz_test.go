package iec104

import (
	"testing"
)

// fuzzSeeds returns the corpus the fuzzers start from: one valid frame
// of every APCI format under every candidate profile, plus the
// malformed shapes the robustness tests already exercise (wrong start
// byte, lying length octet, truncations, empty input). Native fuzzing
// then mutates from frames that reach deep into the ASDU decoders
// instead of bouncing off the header checks.
func fuzzSeeds(f *testing.F) [][]byte {
	var seeds [][]byte
	asdus := []*ASDU{
		NewMeasurement(MMeTf, 5, 1201, Value{Kind: KindFloat, Float: 60.01, HasTime: true}, CauseSpontaneous),
		NewMeasurement(MMeNc, 9, 2001, Value{Kind: KindFloat, Float: -12.5}, CausePeriodic),
		NewInterrogation(7, CauseActivation),
		NewSetpointFloat(3, 4001, 120.5, CauseActivation),
	}
	for _, p := range CandidateProfiles {
		for _, a := range asdus {
			frame, err := NewI(3, 4, a).Marshal(p)
			if err != nil {
				f.Fatal(err)
			}
			seeds = append(seeds, frame)
		}
	}
	s, err := NewS(9).Marshal(Standard)
	if err != nil {
		f.Fatal(err)
	}
	u, err := NewU(UStartDTAct).Marshal(Standard)
	if err != nil {
		f.Fatal(err)
	}
	good := seeds[0]
	seeds = append(seeds, s, u,
		nil,                   // empty
		[]byte{StartByte},     // lone start byte
		[]byte{0x69, 4, 0, 0}, // wrong start byte
		good[:3],              // truncated header
		good[:len(good)-2],    // truncated body
		append([]byte{StartByte, 0xff}, good[2:]...), // lying length octet
	)
	return seeds
}

// FuzzParseAPDU checks the frame parser under every profile: it must
// never panic, must report consumed bytes inside the input, and any
// frame it accepts must survive a marshal → parse round trip.
func FuzzParseAPDU(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range CandidateProfiles {
			apdu, n, err := ParseAPDU(data, p)
			if err != nil {
				continue
			}
			if n <= 0 || n > len(data) {
				t.Fatalf("profile %v: consumed %d of %d bytes", p, n, len(data))
			}
			out, err := apdu.Marshal(p)
			if err != nil {
				// Some tolerated inputs (e.g. unsupported type IDs) parse
				// but do not re-marshal; that is fine.
				continue
			}
			re, _, err := ParseAPDU(out, p)
			if err != nil {
				t.Fatalf("profile %v: re-parse of re-marshalled frame failed: %v", p, err)
			}
			if re.Format != apdu.Format {
				t.Fatalf("profile %v: format changed across round trip: %v -> %v", p, apdu.Format, re.Format)
			}
		}
	})
}

// FuzzParseAPDUs checks the multi-frame splitter: no panics, and the
// consumed count must stay within the input.
func FuzzParseAPDUs(f *testing.F) {
	seeds := fuzzSeeds(f)
	for _, s := range seeds {
		f.Add(s)
	}
	// A two-frame seed exercises the resynchronisation path.
	f.Add(append(append([]byte(nil), seeds[0]...), seeds[1]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range CandidateProfiles {
			apdus, n, _ := ParseAPDUs(data, p)
			if n < 0 || n > len(data) {
				t.Fatalf("profile %v: consumed %d of %d bytes", p, n, len(data))
			}
			if len(apdus) > 0 && n == 0 {
				t.Fatalf("profile %v: returned %d frames without consuming input", p, len(apdus))
			}
		}
	})
}

// FuzzParseASDU fuzzes the payload decoder directly, bypassing the
// APCI header checks that shield it in FuzzParseAPDU.
func FuzzParseASDU(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		if len(s) > 6 {
			f.Add(s[6:]) // strip the APCI, leaving the raw ASDU
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range CandidateProfiles {
			_, _ = ParseASDU(data, p)
		}
	})
}

// FuzzTolerantParser drives the endpoint-learning parser, the exact
// code path the measurement pipeline feeds with live TCP payloads.
// DetectProfile rides along since the tolerant parser calls it while
// undecided.
func FuzzTolerantParser(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DetectProfile(data)
		tp := NewTolerantParser()
		apdus, err := tp.Parse("fuzz-endpoint", data)
		if err == nil {
			for _, a := range apdus {
				if a == nil {
					t.Fatal("tolerant parser returned a nil frame without error")
				}
			}
		}
		// Feeding the same endpoint again must not panic either: the
		// parser keeps per-endpoint dialect state between calls.
		_, _ = tp.Parse("fuzz-endpoint", data)
	})
}
