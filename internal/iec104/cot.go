package iec104

import "fmt"

// Cause is the cause of transmission (COT): "why" an ASDU is sent.
type Cause uint8

// Causes of transmission defined by IEC 60870-5-101 §7.2.3.
const (
	CausePeriodic     Cause = 1  // per/cyc: periodic, cyclic reporting
	CauseBackground   Cause = 2  // back: background scan
	CauseSpontaneous  Cause = 3  // spont: value crossed a configured threshold
	CauseInitialized  Cause = 4  // init: end of initialization
	CauseRequest      Cause = 5  // req: request or requested
	CauseActivation   Cause = 6  // act: command activation
	CauseActConfirm   Cause = 7  // actcon: activation confirmation
	CauseDeactivation Cause = 8  // deact
	CauseDeactConfirm Cause = 9  // deactcon
	CauseActTerm      Cause = 10 // actterm: activation termination
	CauseReturnRemote Cause = 11 // retrem
	CauseReturnLocal  Cause = 12 // retloc
	CauseFile         Cause = 13 // file transfer
	CauseInrogen      Cause = 20 // inrogen: interrogated by general interrogation
	// Causes 21-36 are interrogated by group 1-16.
	CauseReqCoGen Cause = 37 // reqcogen: requested by counter general request
	// Negative / error confirmations.
	CauseUnknownType  Cause = 44 // unknown type identification
	CauseUnknownCause Cause = 45 // unknown cause of transmission
	CauseUnknownCA    Cause = 46 // unknown common address of ASDU
	CauseUnknownIOA   Cause = 47 // unknown information object address
)

var causeNames = map[Cause]string{
	CausePeriodic:     "per/cyc",
	CauseBackground:   "back",
	CauseSpontaneous:  "spont",
	CauseInitialized:  "init",
	CauseRequest:      "req",
	CauseActivation:   "act",
	CauseActConfirm:   "actcon",
	CauseDeactivation: "deact",
	CauseDeactConfirm: "deactcon",
	CauseActTerm:      "actterm",
	CauseReturnRemote: "retrem",
	CauseReturnLocal:  "retloc",
	CauseFile:         "file",
	CauseInrogen:      "inrogen",
	CauseReqCoGen:     "reqcogen",
	CauseUnknownType:  "unknown-type",
	CauseUnknownCause: "unknown-cause",
	CauseUnknownCA:    "unknown-ca",
	CauseUnknownIOA:   "unknown-ioa",
}

func (c Cause) String() string {
	if n, ok := causeNames[c]; ok {
		return n
	}
	if c >= 21 && c <= 36 {
		return fmt.Sprintf("inro%d", c-20)
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Valid reports whether c is a cause value defined by the standard.
func (c Cause) Valid() bool {
	if _, ok := causeNames[c]; ok {
		return true
	}
	return c >= 21 && c <= 36
}

// COT is the full cause-of-transmission field. In IEC 104 it occupies
// two octets: the cause (6 bits) with the P/N and T flags, followed by
// the originator address. The legacy IEC 101 encoding the paper found
// in the wild omits the originator octet.
type COT struct {
	Cause    Cause
	Negative bool  // P/N bit: negative confirmation
	Test     bool  // T bit: test transmission
	Orig     uint8 // originator address (absent in the 1-octet legacy form)
}

// encode writes the COT using size octets (1 or 2) and returns the
// bytes written.
func (c COT) encode(dst []byte, size int) int {
	b := uint8(c.Cause) & 0x3F
	if c.Negative {
		b |= 0x40
	}
	if c.Test {
		b |= 0x80
	}
	dst[0] = b
	if size == 2 {
		dst[1] = c.Orig
		return 2
	}
	return 1
}

func decodeCOT(b []byte, size int) (COT, error) {
	if len(b) < size {
		return COT{}, ErrShortASDU
	}
	c := COT{
		Cause:    Cause(b[0] & 0x3F),
		Negative: b[0]&0x40 != 0,
		Test:     b[0]&0x80 != 0,
	}
	if size == 2 {
		c.Orig = b[1]
	}
	return c, nil
}
