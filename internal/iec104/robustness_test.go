package iec104

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanicsOnRandomBytes hammers the parser with random
// buffers under every candidate profile: a network-facing parser must
// fail loudly, never crash. (The paper's whole §6.1 is about frames a
// parser author never anticipated.)
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		for _, p := range CandidateProfiles {
			_, _, _ = ParseAPDU(buf, p)
			_, _, _ = ParseAPDUs(buf, p)
		}
		_, _, _ = DetectProfile(buf)
	}
}

// TestParseNeverPanicsOnMutatedFrames flips bytes of valid frames —
// the classic way to shake out slice-bounds bugs in length-prefixed
// codecs.
func TestParseNeverPanicsOnMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	asdu := NewMeasurement(MMeTf, 5, 1201, Value{Kind: KindFloat, Float: 60, HasTime: true}, CauseSpontaneous)
	for _, p := range CandidateProfiles {
		frame, err := NewI(3, 4, asdu).Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			mut := append([]byte(nil), frame...)
			for k := 0; k < 1+rng.Intn(3); k++ {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
			// Also truncate sometimes.
			if rng.Intn(4) == 0 {
				mut = mut[:rng.Intn(len(mut)+1)]
			}
			for _, pp := range CandidateProfiles {
				_, _, _ = ParseAPDU(mut, pp)
			}
			_, _, _ = DetectProfile(mut)
		}
	}
}

// TestTolerantParserNeverPanics runs the endpoint-learning parser over
// random garbage streams.
func TestTolerantParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	tp := NewTolerantParser()
	for i := 0; i < 5000; i++ {
		n := rng.Intn(128)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		// Half the buffers start like frames.
		if n > 2 && rng.Intn(2) == 0 {
			buf[0] = StartByte
		}
		_, _ = tp.Parse("ep", buf)
	}
}

// TestCP56NeverPanics decodes random time tags.
func TestCP56NeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	var b [7]byte
	for i := 0; i < 20000; i++ {
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		_, _ = DecodeCP56Time2a(b[:])
	}
}
