package iec104

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCP56Time2aRoundTrip(t *testing.T) {
	cases := []time.Time{
		time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2026, 7, 5, 23, 59, 59, 999e6, time.UTC),
		time.Date(1999, 12, 31, 12, 30, 15, 500e6, time.UTC),
		time.Date(2069, 6, 15, 6, 6, 6, 0, time.UTC),
	}
	for _, want := range cases {
		var b [7]byte
		EncodeCP56Time2a(b[:], CP56Time2a{Time: want})
		got, err := DecodeCP56Time2a(b[:])
		if err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		if !got.Time.Equal(want) {
			t.Errorf("round-trip %v -> %v", want, got.Time)
		}
	}
}

func TestCP56Time2aQuick(t *testing.T) {
	check := func(sec uint32, ms uint16) bool {
		// Any instant between 2000 and 2069 must round-trip to the
		// millisecond.
		base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
		want := base.Add(time.Duration(sec%(69*365*24*3600)) * time.Second).
			Add(time.Duration(ms%1000) * time.Millisecond)
		var b [7]byte
		EncodeCP56Time2a(b[:], CP56Time2a{Time: want})
		got, err := DecodeCP56Time2a(b[:])
		return err == nil && got.Time.Equal(want)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCP56Time2aFlags(t *testing.T) {
	var b [7]byte
	EncodeCP56Time2a(b[:], CP56Time2a{
		Time:    time.Date(2024, 5, 1, 10, 20, 30, 0, time.UTC),
		Invalid: true,
		Summer:  true,
	})
	got, err := DecodeCP56Time2a(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Invalid || !got.Summer {
		t.Fatalf("flags = %+v", got)
	}
}

func TestCP56Time2aRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0xFF, 0xFF, 0, 0, 1, 1, 20}, // ms > 59999
		{0, 0, 60, 0, 1, 1, 20},      // minute 60
		{0, 0, 0, 24, 1, 1, 20},      // hour 24
		{0, 0, 0, 0, 0, 1, 20},       // day 0
		{0, 0, 0, 0, 1, 13, 20},      // month 13
		{0, 0, 0, 0, 1, 0, 20},       // month 0
	}
	for i, b := range cases {
		if _, err := DecodeCP56Time2a(b); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
}

func TestCP24Time2aRoundTrip(t *testing.T) {
	want := CP24Time2a{Millis: 45999, Minute: 12, Invalid: true}
	var b [3]byte
	EncodeCP24Time2a(b[:], want)
	got, err := DecodeCP24Time2a(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if _, err := DecodeCP24Time2a(b[:2]); err == nil {
		t.Error("short CP24 decoded")
	}
}

func TestCP56YearWindow(t *testing.T) {
	// Years 70-99 map to the 1900s, 00-69 to the 2000s.
	var b [7]byte
	EncodeCP56Time2a(b[:], CP56Time2a{Time: time.Date(1975, 2, 3, 4, 5, 6, 0, time.UTC)})
	got, err := DecodeCP56Time2a(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Time.Year() != 1975 {
		t.Fatalf("year = %d, want 1975", got.Time.Year())
	}
}
