package iec104

import "fmt"

// TypeID is the ASDU type identification: the first ASDU octet, which
// defines the exact data format or command that follows ("what" is
// being sent; the cause of transmission says "why").
type TypeID uint8

// Monitor direction process information.
const (
	MSpNa TypeID = 1  // M_SP_NA_1: single-point information
	MDpNa TypeID = 3  // M_DP_NA_1: double-point information
	MStNa TypeID = 5  // M_ST_NA_1: step position information
	MBoNa TypeID = 7  // M_BO_NA_1: bitstring of 32 bits
	MMeNa TypeID = 9  // M_ME_NA_1: measured value, normalized
	MMeNb TypeID = 11 // M_ME_NB_1: measured value, scaled
	MMeNc TypeID = 13 // M_ME_NC_1: measured value, short floating point
	MItNa TypeID = 15 // M_IT_NA_1: integrated totals
	MPsNa TypeID = 20 // M_PS_NA_1: packed single-point with status change detection
	MMeNd TypeID = 21 // M_ME_ND_1: measured value, normalized, no quality descriptor
)

// Monitor direction process information with CP56Time2a time tag.
const (
	MSpTb TypeID = 30 // M_SP_TB_1: single-point + time tag
	MDpTb TypeID = 31 // M_DP_TB_1: double-point + time tag
	MStTb TypeID = 32 // M_ST_TB_1: step position + time tag
	MBoTb TypeID = 33 // M_BO_TB_1: bitstring of 32 bits + time tag
	MMeTd TypeID = 34 // M_ME_TD_1: measured value, normalized + time tag
	MMeTe TypeID = 35 // M_ME_TE_1: measured value, scaled + time tag
	MMeTf TypeID = 36 // M_ME_TF_1: measured value, short float + time tag
	MItTb TypeID = 37 // M_IT_TB_1: integrated totals + time tag
	MEpTd TypeID = 38 // M_EP_TD_1: protection equipment event + time tag
	MEpTe TypeID = 39 // M_EP_TE_1: packed start events of protection equipment + time tag
	MEpTf TypeID = 40 // M_EP_TF_1: packed output circuit information + time tag
)

// Control direction process information.
const (
	CScNa TypeID = 45 // C_SC_NA_1: single command
	CDcNa TypeID = 46 // C_DC_NA_1: double command
	CRcNa TypeID = 47 // C_RC_NA_1: regulating step command
	CSeNa TypeID = 48 // C_SE_NA_1: set point command, normalized
	CSeNb TypeID = 49 // C_SE_NB_1: set point command, scaled
	CSeNc TypeID = 50 // C_SE_NC_1: set point command, short float (AGC setpoints)
	CBoNa TypeID = 51 // C_BO_NA_1: bitstring of 32 bits command
)

// Control direction process information with CP56Time2a time tag.
const (
	CScTa TypeID = 58 // C_SC_TA_1: single command + time tag
	CDcTa TypeID = 59 // C_DC_TA_1: double command + time tag
	CRcTa TypeID = 60 // C_RC_TA_1: regulating step command + time tag
	CSeTa TypeID = 61 // C_SE_TA_1: set point, normalized + time tag
	CSeTb TypeID = 62 // C_SE_TB_1: set point, scaled + time tag
	CSeTc TypeID = 63 // C_SE_TC_1: set point, short float + time tag
	CBoTa TypeID = 64 // C_BO_TA_1: bitstring of 32 bits + time tag
)

// System information.
const (
	MEiNa TypeID = 70  // M_EI_NA_1: end of initialization
	CIcNa TypeID = 100 // C_IC_NA_1: (general) interrogation command
	CCiNa TypeID = 101 // C_CI_NA_1: counter interrogation command
	CRdNa TypeID = 102 // C_RD_NA_1: read command
	CCsNa TypeID = 103 // C_CS_NA_1: clock synchronization command
	CRpNa TypeID = 105 // C_RP_NA_1: reset process command
	CTsTa TypeID = 107 // C_TS_TA_1: test command + time tag
)

// Parameter loading.
const (
	PMeNa TypeID = 110 // P_ME_NA_1: parameter of measured value, normalized
	PMeNb TypeID = 111 // P_ME_NB_1: parameter of measured value, scaled
	PMeNc TypeID = 112 // P_ME_NC_1: parameter of measured value, short float
	PAcNa TypeID = 113 // P_AC_NA_1: parameter activation
)

// File transfer.
const (
	FFrNa TypeID = 120 // F_FR_NA_1: file ready
	FSrNa TypeID = 121 // F_SR_NA_1: section ready
	FScNa TypeID = 122 // F_SC_NA_1: call directory / select file / call file / call section
	FLsNa TypeID = 123 // F_LS_NA_1: last section / last segment
	FAfNa TypeID = 124 // F_AF_NA_1: ack file / ack section
	FSgNa TypeID = 125 // F_SG_NA_1: segment
	FDrTa TypeID = 126 // F_DR_TA_1: directory
	FScNb TypeID = 127 // F_SC_NB_1: query log / request archive file
)

// typeInfo describes the wire layout of one type identification.
type typeInfo struct {
	acronym string
	desc    string
	// elemSize is the fixed size in octets of one information element
	// (excluding the IOA). Types with variable element sizes (file
	// segments) set variable instead.
	elemSize int
	variable bool
}

var typeTable = map[TypeID]typeInfo{
	MSpNa: {"M_SP_NA_1", "Single-point information", 1, false},
	MDpNa: {"M_DP_NA_1", "Double-point information", 1, false},
	MStNa: {"M_ST_NA_1", "Step position information", 2, false},
	MBoNa: {"M_BO_NA_1", "Bitstring of 32 bits", 5, false},
	MMeNa: {"M_ME_NA_1", "Measured value, normalized value", 3, false},
	MMeNb: {"M_ME_NB_1", "Measured value, scaled value", 3, false},
	MMeNc: {"M_ME_NC_1", "Measured value, short floating point number", 5, false},
	MItNa: {"M_IT_NA_1", "Integrated totals", 5, false},
	MPsNa: {"M_PS_NA_1", "Packed single-point information with status change detection", 5, false},
	MMeNd: {"M_ME_ND_1", "Measured value, normalized value without quality descriptor", 2, false},

	MSpTb: {"M_SP_TB_1", "Single-point information with time tag CP56Time2a", 8, false},
	MDpTb: {"M_DP_TB_1", "Double-point information with time tag CP56Time2a", 8, false},
	MStTb: {"M_ST_TB_1", "Step position information with time tag CP56Time2a", 9, false},
	MBoTb: {"M_BO_TB_1", "Bitstring of 32 bit with time tag CP56Time2a", 12, false},
	MMeTd: {"M_ME_TD_1", "Measured value, normalized value with time tag CP56Time2a", 10, false},
	MMeTe: {"M_ME_TE_1", "Measured value, scaled value with time tag CP56Time2a", 10, false},
	MMeTf: {"M_ME_TF_1", "Measured value, short floating point number with time tag CP56Time2a", 12, false},
	MItTb: {"M_IT_TB_1", "Integrated totals with time tag CP56Time2a", 12, false},
	MEpTd: {"M_EP_TD_1", "Event of protection equipment with time tag CP56Time2a", 10, false},
	MEpTe: {"M_EP_TE_1", "Packed start events of protection equipment with time tag CP56Time2a", 11, false},
	MEpTf: {"M_EP_TF_1", "Packed output circuit information of protection equipment with time tag CP56Time2a", 11, false},

	CScNa: {"C_SC_NA_1", "Single command", 1, false},
	CDcNa: {"C_DC_NA_1", "Double command", 1, false},
	CRcNa: {"C_RC_NA_1", "Regulating step command", 1, false},
	CSeNa: {"C_SE_NA_1", "Set point command, normalized value", 3, false},
	CSeNb: {"C_SE_NB_1", "Set point command, scaled value", 3, false},
	CSeNc: {"C_SE_NC_1", "Set point command, short floating point number", 5, false},
	CBoNa: {"C_BO_NA_1", "Bitstring of 32 bits", 4, false},

	CScTa: {"C_SC_TA_1", "Single command with time tag CP56Time2a", 8, false},
	CDcTa: {"C_DC_TA_1", "Double command with time tag CP56Time2a", 8, false},
	CRcTa: {"C_RC_TA_1", "Regulating step command with time tag CP56Time2a", 8, false},
	CSeTa: {"C_SE_TA_1", "Set point command, normalized value with time tag CP56Time2a", 10, false},
	CSeTb: {"C_SE_TB_1", "Set point command, scaled value with time tag CP56Time2a", 10, false},
	CSeTc: {"C_SE_TC_1", "Set point command, short floating point number with time tag CP56Time2a", 12, false},
	CBoTa: {"C_BO_TA_1", "Bitstring of 32 bits with time tag CP56Time2a", 11, false},

	MEiNa: {"M_EI_NA_1", "End of initialization", 1, false},
	CIcNa: {"C_IC_NA_1", "Interrogation command", 1, false},
	CCiNa: {"C_CI_NA_1", "Counter interrogation command", 1, false},
	CRdNa: {"C_RD_NA_1", "Read command", 0, false},
	CCsNa: {"C_CS_NA_1", "Clock synchronization command", 7, false},
	CRpNa: {"C_RP_NA_1", "Reset process command", 1, false},
	CTsTa: {"C_TS_TA_1", "Test command with time tag CP56Time2a", 9, false},

	PMeNa: {"P_ME_NA_1", "Parameter of measured value, normalized value", 3, false},
	PMeNb: {"P_ME_NB_1", "Parameter of measured value, scaled value", 3, false},
	PMeNc: {"P_ME_NC_1", "Parameter of measured value, short floating-point number", 5, false},
	PAcNa: {"P_AC_NA_1", "Parameter activation", 1, false},

	FFrNa: {"F_FR_NA_1", "File ready", 6, false},
	FSrNa: {"F_SR_NA_1", "Section ready", 7, false},
	FScNa: {"F_SC_NA_1", "Call directory, select file, call file, call section", 4, false},
	FLsNa: {"F_LS_NA_1", "Last section, last segment", 5, false},
	FAfNa: {"F_AF_NA_1", "Ack file, ack section", 4, false},
	FSgNa: {"F_SG_NA_1", "Segment", 0, true},
	FDrTa: {"F_DR_TA_1", "Directory", 13, false},
	FScNb: {"F_SC_NB_1", "Query log, request archive file", 16, false},
}

// Supported reports whether t is one of the 54 type identifications
// IEC 104 carries over TCP/IP (IEC 101 defines 127; IEC 104 supports
// only this subset).
func Supported(t TypeID) bool {
	_, ok := typeTable[t]
	return ok
}

// SupportedTypeIDs returns the 54 supported type identifications in
// ascending order.
func SupportedTypeIDs() []TypeID {
	out := make([]TypeID, 0, len(typeTable))
	for t := uint8(1); t <= 127; t++ {
		if Supported(TypeID(t)) {
			out = append(out, TypeID(t))
		}
	}
	return out
}

// Acronym returns the standard acronym for t (e.g. "M_ME_TF_1"), or a
// numeric placeholder for unsupported types.
func (t TypeID) Acronym() string {
	if ti, ok := typeTable[t]; ok {
		return ti.acronym
	}
	return fmt.Sprintf("TYPE_%d", uint8(t))
}

// Description returns the standard's prose description of t.
func (t TypeID) Description() string {
	if ti, ok := typeTable[t]; ok {
		return ti.desc
	}
	return "unsupported type identification"
}

func (t TypeID) String() string { return t.Acronym() }

// ElementSize returns the fixed per-object information element size in
// octets (excluding the IOA) and whether the size is fixed. Variable-
// size types (file segments) return (0, false).
func (t TypeID) ElementSize() (int, bool) {
	ti, ok := typeTable[t]
	if !ok || ti.variable {
		return 0, false
	}
	return ti.elemSize, true
}

// IsMonitor reports whether t flows in the monitor direction
// (outstation to control station).
func (t TypeID) IsMonitor() bool { return t >= 1 && t <= 40 || t == MEiNa }

// IsCommand reports whether t is a control-direction command.
func (t TypeID) IsCommand() bool {
	return t >= CScNa && t <= CBoNa || t >= CScTa && t <= CBoTa ||
		t == CIcNa || t == CCiNa || t == CRdNa || t == CCsNa || t == CRpNa || t == CTsTa
}

// HasTimeTag reports whether t's information elements end with a
// CP56Time2a time tag.
func (t TypeID) HasTimeTag() bool {
	switch t {
	case MSpTb, MDpTb, MStTb, MBoTb, MMeTd, MMeTe, MMeTf, MItTb, MEpTd, MEpTe, MEpTf,
		CScTa, CDcTa, CRcTa, CSeTa, CSeTb, CSeTc, CBoTa, CTsTa, FDrTa:
		return true
	}
	return false
}
