package iec104

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Token is the paper's APDU tokenisation (§6.3.1, Table 4) used for
// N-gram and Markov-chain modelling: "S" for acknowledgements, "U<n>"
// for the six control functions (U1 STARTDT act ... U32 TESTFR con) and
// "I<typeid>" for information transfer.
type Token struct {
	Kind Format
	U    UFunc  // valid when Kind == FormatU
	Type TypeID // valid when Kind == FormatI
}

func (t Token) String() string {
	switch t.Kind {
	case FormatS:
		return "S"
	case FormatU:
		return "U" + strconv.Itoa(int(t.U))
	default:
		return "I" + strconv.Itoa(int(t.Type))
	}
}

// ParseToken parses the textual token form back into a Token.
func ParseToken(s string) (Token, error) {
	switch {
	case s == "S":
		return Token{Kind: FormatS}, nil
	case strings.HasPrefix(s, "U"):
		n, err := strconv.Atoi(s[1:])
		if err != nil {
			return Token{}, fmt.Errorf("iec104: bad U token %q", s)
		}
		u := UFunc(n)
		switch u {
		case UStartDTAct, UStartDTCon, UStopDTAct, UStopDTCon, UTestFRAct, UTestFRCon:
			return Token{Kind: FormatU, U: u}, nil
		}
		return Token{}, fmt.Errorf("iec104: unknown U function in token %q", s)
	case strings.HasPrefix(s, "I"):
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 1 || n > 127 {
			return Token{}, fmt.Errorf("iec104: bad I token %q", s)
		}
		return Token{Kind: FormatI, Type: TypeID(n)}, nil
	}
	return Token{}, fmt.Errorf("iec104: unrecognised token %q", s)
}

// Tokens used repeatedly by the analysis layer.
var (
	TokenS          = Token{Kind: FormatS}
	TokenStartDTAct = Token{Kind: FormatU, U: UStartDTAct}
	TokenStartDTCon = Token{Kind: FormatU, U: UStartDTCon}
	TokenStopDTAct  = Token{Kind: FormatU, U: UStopDTAct}
	TokenStopDTCon  = Token{Kind: FormatU, U: UStopDTCon}
	TokenTestFRAct  = Token{Kind: FormatU, U: UTestFRAct}
	TokenTestFRCon  = Token{Kind: FormatU, U: UTestFRCon}
	TokenInterro    = Token{Kind: FormatI, Type: CIcNa} // I100
)

// SortTokens orders tokens S < U (by function) < I (by type), a stable
// canonical order for reports.
func SortTokens(ts []Token) {
	rank := func(k Format) int {
		switch k {
		case FormatS:
			return 0
		case FormatU:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Kind != b.Kind {
			return rank(a.Kind) < rank(b.Kind)
		}
		if a.Kind == FormatU {
			return a.U < b.U
		}
		return a.Type < b.Type
	})
}
