package iec104

import (
	"fmt"
	"strconv"
	"strings"

	"uncharted/internal/protocol"
)

// Token is the paper's APDU tokenisation (§6.3.1, Table 4) used for
// N-gram and Markov-chain modelling: "S" for acknowledgements, "U<n>"
// for the six control functions (U1 STARTDT act ... U32 TESTFR con) and
// "I<typeid>" for information transfer.
//
// It is an alias for the dialect-neutral protocol.Token with
// Proto == protocol.IEC104 (the zero value): the analysis layers run
// over the protocol alphabet, and IEC 104 tokens render, parse, sort
// and serialize exactly as they did when the alphabet was IEC 104-only.
type Token = protocol.Token

// UToken builds the token of a U-format control frame.
func UToken(u UFunc) Token {
	return Token{Proto: protocol.IEC104, Kind: uint8(FormatU), Code: uint16(u)}
}

// IToken builds the token of an I-format frame carrying a type.
func IToken(t TypeID) Token {
	return Token{Proto: protocol.IEC104, Kind: uint8(FormatI), Code: uint16(t)}
}

// ParseToken parses the textual token form back into a Token. Unlike
// protocol.ParseToken it accepts only the IEC 104 grammar.
func ParseToken(s string) (Token, error) {
	switch {
	case s == "S":
		return TokenS, nil
	case strings.HasPrefix(s, "U"):
		n, err := strconv.Atoi(s[1:])
		if err != nil {
			return Token{}, fmt.Errorf("iec104: bad U token %q", s)
		}
		u := UFunc(n)
		switch u {
		case UStartDTAct, UStartDTCon, UStopDTAct, UStopDTCon, UTestFRAct, UTestFRCon:
			return UToken(u), nil
		}
		return Token{}, fmt.Errorf("iec104: unknown U function in token %q", s)
	case strings.HasPrefix(s, "I"):
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 1 || n > 127 {
			return Token{}, fmt.Errorf("iec104: bad I token %q", s)
		}
		return IToken(TypeID(n)), nil
	}
	return Token{}, fmt.Errorf("iec104: unrecognised token %q", s)
}

// Tokens used repeatedly by the analysis layer.
var (
	TokenS          = Token{Proto: protocol.IEC104, Kind: uint8(FormatS)}
	TokenStartDTAct = UToken(UStartDTAct)
	TokenStartDTCon = UToken(UStartDTCon)
	TokenStopDTAct  = UToken(UStopDTAct)
	TokenStopDTCon  = UToken(UStopDTCon)
	TokenTestFRAct  = UToken(UTestFRAct)
	TokenTestFRCon  = UToken(UTestFRCon)
	TokenInterro    = IToken(CIcNa) // I100
)

// SortTokens orders tokens S < U (by function) < I (by type), a stable
// canonical order for reports (protocol.SortTokens on an IEC 104-only
// set is exactly this order).
func SortTokens(ts []Token) { protocol.SortTokens(ts) }
