package iec104

import (
	"uncharted/internal/protocol"
)

// NextFrame extracts one APDU from the front of buf. It resynchronises
// on the 0x68 start byte if leading garbage is present; skipped reports
// how many bytes were discarded doing so (including a false start byte
// on a corrupt length octet). This is the dialect-owned garbage-skip:
// the core analyzer and the generic protocol.Session both frame
// through it, so resync behaviour cannot drift between the two paths.
func NextFrame(buf []byte) (frame, rest []byte, skipped int, ok bool) {
	// Drop bytes until a start byte.
	i := 0
	for i < len(buf) && buf[i] != StartByte {
		i++
	}
	buf = buf[i:]
	if len(buf) < 2 {
		return nil, buf, i, false
	}
	total := 2 + int(buf[1])
	if int(buf[1]) < 4 {
		// Corrupt length; skip the false start byte.
		return nil, buf[1:], i + 1, false
	}
	if len(buf) < total {
		return nil, buf, i, false
	}
	return buf[:total], buf[total:], i, true
}

// dialect implements protocol.Dialect for IEC 60870-5-104.
type dialect struct{}

func (dialect) ID() protocol.ID        { return protocol.IEC104 }
func (dialect) Name() string           { return "iec104" }
func (dialect) Port() uint16           { return 2404 }
func (dialect) StationInitiates() bool { return false }
func (dialect) NewSession() protocol.Session {
	return &session{parser: NewTolerantParser()}
}

// Sniff accepts a plausible APDU head: the 0x68 start byte followed by
// a legal length octet.
func (dialect) Sniff(b []byte) bool {
	return len(b) >= 2 && b[0] == StartByte && b[1] >= 4
}

// session is the per-flow protocol.Session. The core analyzer keeps
// its own specialised IEC 104 path (shared tolerant-parser dialect
// cache, compliance bookkeeping); this session serves the generic
// registry consumers — iec104dump's shared decode, mixed-capture
// tooling — with the same framing and tolerant parsing.
type session struct {
	parser *TolerantParser
	apdu   APDU
	asdu   ASDU
	pts    []protocol.Point
}

func (s *session) Next(buf []byte, fromStation bool) (protocol.Event, []byte, int, bool) {
	frame, rest, skipped, ok := NextFrame(buf)
	if !ok {
		return protocol.Event{}, rest, skipped, false
	}
	// The tolerant parser pins a dialect per endpoint key; within one
	// flow the two directions are the two endpoints.
	key := "master"
	if fromStation {
		key = "station"
	}
	if _, err := s.parser.ParseFrameInto(key, frame, &s.apdu, &s.asdu); err != nil {
		return protocol.Event{Err: err}, rest, skipped, true
	}
	ev := protocol.Event{Token: s.apdu.Token()}
	if s.apdu.Format == FormatI && s.apdu.ASDU != nil {
		s.pts = s.pts[:0]
		command := !fromStation
		for _, obj := range s.apdu.ASDU.Objects {
			switch obj.Value.Kind {
			case KindFloat, KindNormalized, KindScaled, KindSingle,
				KindDouble, KindStep, KindCounter, KindCommand:
			default:
				continue
			}
			p := protocol.Point{
				IOA:     obj.IOA,
				Code:    uint8(s.apdu.ASDU.Type),
				V:       obj.Value.Float,
				Command: command,
			}
			if obj.Value.HasTime && !obj.Value.Time.Invalid {
				p.T = obj.Value.Time.Time
			}
			s.pts = append(s.pts, p)
		}
		ev.Points = s.pts
	}
	return ev, rest, skipped, true
}

func init() { protocol.Register(dialect{}) }
