package iec104

import (
	"errors"
	"math"
)

// ErrNoProfile is returned by DetectProfile when no candidate dialect
// yields a plausible decode.
var ErrNoProfile = errors.New("iec104: no candidate profile decodes this frame plausibly")

// DetectionResult reports how a candidate profile fared against a
// frame.
type DetectionResult struct {
	Profile Profile
	// Score is the plausibility score; higher is better. Profiles
	// that fail to decode at all are omitted from Candidates.
	Score float64
	Err   error
}

// DetectProfile determines which dialect a raw APDU (starting at the
// 0x68 octet) is encoded with. It mirrors how the paper's authors
// diagnosed the malformed captures: Wireshark's strict parser flagged
// invalid IOA addresses and random-looking measurements, which are
// exactly the symptoms of decoding legacy IEC 101 field sizes with
// IEC 104 offsets. Each candidate profile must
//
//   - consume the ASDU exactly (the object count times the element size
//     must match the APCI length),
//   - produce a valid cause of transmission,
//   - produce plausible IOAs (non-zero for process information, within
//     a sane range, not using reserved high bytes), and
//   - produce measurement values that are not absurd (quality reserved
//     bits clear, floats finite and of reasonable magnitude).
//
// The highest-scoring candidate wins; Standard wins ties so compliant
// traffic is never misreported as legacy.
func DetectProfile(frame []byte) (Profile, []DetectionResult, error) {
	var results []DetectionResult
	best := -1
	bestScore := math.Inf(-1)
	for _, p := range CandidateProfiles {
		apdu, _, err := ParseAPDU(frame, p)
		if err != nil {
			results = append(results, DetectionResult{Profile: p, Score: math.Inf(-1), Err: err})
			continue
		}
		if apdu.Format != FormatI {
			// Control frames carry no ASDU: every profile decodes
			// them identically, so report Standard.
			return Standard, []DetectionResult{{Profile: Standard, Score: 1}}, nil
		}
		score := plausibility(apdu.ASDU, p)
		results = append(results, DetectionResult{Profile: p, Score: score})
		if score > bestScore {
			bestScore = score
			best = len(results) - 1
		}
	}
	if best < 0 || math.IsInf(bestScore, -1) {
		return Profile{}, results, ErrNoProfile
	}
	return results[best].Profile, results, nil
}

// plausibility scores a successfully decoded ASDU. A decode that
// consumed the buffer exactly already passed the hard structural check;
// the remaining signals separate "decodes by coincidence" from the real
// dialect.
func plausibility(a *ASDU, p Profile) float64 {
	score := 0.0
	if p.IsStandard() {
		score += 0.5 // prefer the compliant reading on ties
	}
	// Valid, commonly used cause.
	switch a.COT.Cause {
	case CausePeriodic, CauseSpontaneous, CauseInrogen, CauseActivation,
		CauseActConfirm, CauseActTerm, CauseRequest, CauseInitialized, CauseBackground:
		score += 2
	default:
		if a.COT.Cause.Valid() {
			score += 0.5
		}
	}
	// Originator addresses are nearly always 0 in the field; a nonzero
	// value often means we swallowed a data byte into the COT.
	if p.COTSize == 2 && a.COT.Orig != 0 {
		score -= 1.5
	}
	if a.CommonAddr == 0 || a.CommonAddr == 0xFFFF {
		score -= 1
	}
	for _, obj := range a.Objects {
		score += objectPlausibility(a.Type, obj)
	}
	return score
}

func objectPlausibility(t TypeID, obj InfoObject) float64 {
	s := 0.0
	// Process information at IOA 0 is invalid; interrogation and other
	// station-scoped commands legitimately use 0.
	switch t {
	case CIcNa, CCiNa, CCsNa, CRpNa, MEiNa:
		if obj.IOA == 0 {
			s += 1
		}
	default:
		if obj.IOA == 0 {
			s -= 2
		}
	}
	// Field IOAs cluster low; a high byte in use suggests misaligned
	// decoding (the "invalid IOA addresses" Wireshark flagged).
	switch {
	case obj.IOA < 1<<14:
		s += 1
	case obj.IOA < 1<<16:
		s += 0.25
	default:
		s -= 2
	}
	// Quality reserved bits (0x0E of the QDS octet) must be zero in
	// compliant traffic. decodeElement folded defined bits into
	// Quality; re-check the raw octet where applicable.
	if q := qualityOctetOf(t, obj.Raw); q >= 0 && q&0x0E != 0 {
		s -= 2
	}
	// Short floats decoded at the wrong offset look like random bit
	// patterns: denormals, NaNs, or astronomically large magnitudes.
	if obj.Value.Kind == KindFloat || (obj.Value.Kind == KindCommand && (t == CSeNc || t == CSeTc)) {
		f := obj.Value.Float
		switch {
		case math.IsNaN(f) || math.IsInf(f, 0):
			s -= 3
		case f != 0 && (math.Abs(f) < 1e-20 || math.Abs(f) > 1e12):
			s -= 2
		default:
			s += 1
		}
	}
	if obj.Value.HasTime && !obj.Value.Time.Invalid {
		y := obj.Value.Time.Time.Year()
		if y >= 2000 && y <= 2069 {
			s += 0.5
		} else {
			s -= 1
		}
	}
	return s
}

// qualityOctetOf returns the raw QDS octet for types that carry one, or
// -1 when the type has no QDS.
func qualityOctetOf(t TypeID, raw []byte) int {
	var idx int
	switch t {
	case MMeNa, MMeNb, MSpNa, MDpNa: // QDS / SIQ / DIQ is part of octet 0 for SP/DP
		switch t {
		case MSpNa, MDpNa:
			return int(raw[0]) & 0x0E // reserved bits of SIQ/DIQ
		default:
			idx = 2
		}
	case MMeNc:
		idx = 4
	case MStNa:
		idx = 1
	case MBoNa, MPsNa:
		idx = 4
	case MMeTd, MMeTe:
		idx = 2
	case MMeTf:
		idx = 4
	case MSpTb, MDpTb:
		return int(raw[0]) & 0x0E
	case MStTb:
		idx = 1
	case MBoTb:
		idx = 4
	default:
		return -1
	}
	if idx >= len(raw) {
		return -1
	}
	return int(raw[idx]) & 0x0E
}

// TolerantParser decodes APDU streams whose dialect is unknown,
// learning and caching the profile per logical endpoint. This is the
// parser the paper built (and released) to analyse the non-compliant
// outstations.
type TolerantParser struct {
	profiles map[string]Profile
	// Detections counts how many frames were profile-detected (as
	// opposed to served from the per-endpoint cache).
	Detections int

	// detAPDU/detASDU are the detection scratch pair: candidate sweeps
	// decode into them instead of allocating a fresh APDU per profile,
	// so re-detection (every unpinned frame; multiplied per shard under
	// a sharded engine) stays allocation-free.
	detAPDU APDU
	detASDU ASDU
}

// detect is DetectProfile over the parser's scratch pair, without
// materializing the per-candidate result list. Decision-for-decision
// identical: candidates are tried in the same order, scored by the
// same plausibility function, and ties break the same way (strict >
// keeps the earliest best, so Standard wins).
func (tp *TolerantParser) detect(frame []byte) (Profile, error) {
	var best Profile
	bestScore := math.Inf(-1)
	found := false
	for _, p := range CandidateProfiles {
		if _, err := ParseAPDUInto(&tp.detAPDU, &tp.detASDU, frame, p, true); err != nil {
			continue
		}
		if tp.detAPDU.Format != FormatI {
			// Control frames carry no ASDU: every profile decodes them
			// identically, so report Standard.
			return Standard, nil
		}
		if score := plausibility(tp.detAPDU.ASDU, p); score > bestScore {
			bestScore = score
			best = p
			found = true
		}
	}
	if !found || math.IsInf(bestScore, -1) {
		return Profile{}, ErrNoProfile
	}
	return best, nil
}

// StrictPlausible reports whether the frame passes the §6.1 Wireshark
// test: it parses under the Standard profile and, for I-frames,
// detection also picks Standard. Equivalent to a strict ParseAPDU
// followed by DetectProfile, but runs over the parser's scratch pair so
// the per-frame check (every frame of an undetected station, repeated
// per analysis shard) allocates nothing.
func (tp *TolerantParser) StrictPlausible(frame []byte) bool {
	if _, err := ParseAPDUInto(&tp.detAPDU, &tp.detASDU, frame, Standard, true); err != nil {
		return false
	}
	if tp.detAPDU.Format != FormatI {
		return true
	}
	p, err := tp.detect(frame)
	if err != nil {
		return false
	}
	return p.IsStandard()
}

// NewTolerantParser returns a parser with an empty endpoint cache.
func NewTolerantParser() *TolerantParser {
	return &TolerantParser{profiles: make(map[string]Profile)}
}

// ProfileFor returns the cached dialect for an endpoint key, and
// whether one is cached.
func (tp *TolerantParser) ProfileFor(endpoint string) (Profile, bool) {
	p, ok := tp.profiles[endpoint]
	return p, ok
}

// SetProfile pins a dialect for an endpoint, bypassing detection.
func (tp *TolerantParser) SetProfile(endpoint string, p Profile) {
	tp.profiles[endpoint] = p
}

// Parse decodes every APDU in payload originating from the given
// endpoint key (typically "ip:port" of the sender). On the first
// I-format frame from an endpoint the dialect is detected and cached;
// subsequent frames use the cache. If a cached dialect later fails, the
// frame is re-detected and the cache updated.
func (tp *TolerantParser) Parse(endpoint string, payload []byte) ([]*APDU, error) {
	var out []*APDU
	off := 0
	for off < len(payload) {
		frame := payload[off:]
		p, cached := tp.profiles[endpoint]
		if cached {
			apdu, n, err := ParseAPDU(frame, p)
			if err == nil {
				out = append(out, apdu)
				off += n
				continue
			}
		}
		detected, _, err := DetectProfile(frame)
		if err != nil {
			return out, err
		}
		tp.Detections++
		apdu, n, err := ParseAPDU(frame, detected)
		if err != nil {
			return out, err
		}
		if apdu.Format == FormatI {
			tp.profiles[endpoint] = detected
		}
		out = append(out, apdu)
		off += n
	}
	return out, nil
}

// ParseFrameInto decodes the single APDU at the front of frame into the
// caller-owned dst/scratch pair, using the endpoint's cached dialect
// when available and falling back to detection exactly like Parse. The
// decode aliases frame (object Raw slices point into it), so the result
// is valid only until frame's buffer or the scratch pair is reused.
// Steady-state calls (cache hit) allocate nothing; this is the
// analyzer's per-frame hot path, which always hands in exactly one
// framed APDU. Returns the number of bytes consumed.
func (tp *TolerantParser) ParseFrameInto(endpoint string, frame []byte, dst *APDU, scratch *ASDU) (int, error) {
	p, cached := tp.profiles[endpoint]
	if cached {
		n, err := ParseAPDUInto(dst, scratch, frame, p, true)
		if err == nil {
			return n, nil
		}
	}
	// Control frames (S/U) carry no ASDU and decode identically under
	// every dialect, so DetectProfile would report Standard without
	// pinning; take that answer allocation-free. This matters for
	// endpoints that only acknowledge for long stretches — every frame
	// of theirs is a cache miss, and under a sharded engine each shard
	// re-learns every endpoint, multiplying the candidate sweeps.
	if n, err := ParseAPDUInto(dst, scratch, frame, Standard, true); err == nil && dst.Format != FormatI {
		tp.Detections++
		return n, nil
	}
	detected, err := tp.detect(frame)
	if err != nil {
		return 0, err
	}
	tp.Detections++
	n, err := ParseAPDUInto(dst, scratch, frame, detected, true)
	if err != nil {
		return 0, err
	}
	if dst.Format == FormatI {
		tp.profiles[endpoint] = detected
	}
	return n, nil
}
