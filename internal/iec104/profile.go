package iec104

import "fmt"

// Profile fixes the sizes of the variable-width ASDU fields. IEC 104
// mandates a 2-octet cause of transmission, a 2-octet common address
// and a 3-octet information object address. The federated network the
// paper measured contained outstations that kept their legacy IEC 101
// field sizes after the serial-to-TCP/IP upgrade, so a parser must be
// able to decode those dialects too.
type Profile struct {
	COTSize        int // 1 (legacy IEC 101) or 2 (IEC 104)
	CommonAddrSize int // 1 (legacy IEC 101) or 2 (IEC 104)
	IOASize        int // 2 (legacy IEC 101) or 3 (IEC 104)
}

// The profiles observed in the paper's captures.
var (
	// Standard is the IEC 104 compliant layout.
	Standard = Profile{COTSize: 2, CommonAddrSize: 2, IOASize: 3}
	// LegacyCOT keeps the 1-octet IEC 101 cause of transmission
	// (outstations O28, O53, O58 in the paper).
	LegacyCOT = Profile{COTSize: 1, CommonAddrSize: 2, IOASize: 3}
	// LegacyIOA keeps the 2-octet IEC 101 information object address
	// (outstation O37 in the paper).
	LegacyIOA = Profile{COTSize: 2, CommonAddrSize: 2, IOASize: 2}
	// LegacyCOTIOA combines both deviations.
	LegacyCOTIOA = Profile{COTSize: 1, CommonAddrSize: 2, IOASize: 2}
	// LegacyFull is IEC 101's classic minimal sizing, including a
	// 1-octet common address — what a pass-through serial gateway
	// emits when nothing was reconfigured.
	LegacyFull = Profile{COTSize: 1, CommonAddrSize: 1, IOASize: 2}
)

// CandidateProfiles lists the dialects DetectProfile scores, most
// compliant first.
var CandidateProfiles = []Profile{Standard, LegacyCOT, LegacyIOA, LegacyCOTIOA, LegacyFull}

// Validate checks that the field sizes are ones either standard allows.
func (p Profile) Validate() error {
	if p.COTSize != 1 && p.COTSize != 2 {
		return fmt.Errorf("iec104: COT size %d not in {1,2}", p.COTSize)
	}
	if p.CommonAddrSize != 1 && p.CommonAddrSize != 2 {
		return fmt.Errorf("iec104: common address size %d not in {1,2}", p.CommonAddrSize)
	}
	if p.IOASize != 2 && p.IOASize != 3 {
		return fmt.Errorf("iec104: IOA size %d not in {2,3}", p.IOASize)
	}
	return nil
}

// IsStandard reports whether p is the fully compliant IEC 104 layout.
func (p Profile) IsStandard() bool { return p == Standard }

func (p Profile) String() string {
	switch p {
	case Standard:
		return "standard"
	case LegacyCOT:
		return "legacy-cot8"
	case LegacyIOA:
		return "legacy-ioa16"
	case LegacyCOTIOA:
		return "legacy-cot8-ioa16"
	case LegacyFull:
		return "legacy-full"
	}
	return fmt.Sprintf("profile(cot=%d,ca=%d,ioa=%d)", p.COTSize, p.CommonAddrSize, p.IOASize)
}

// maxIOA returns the largest representable information object address.
func (p Profile) maxIOA() uint32 {
	if p.IOASize == 2 {
		return 1<<16 - 1
	}
	return 1<<24 - 1
}
