package iec104

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUFrameRoundTrip(t *testing.T) {
	fns := []UFunc{UStartDTAct, UStartDTCon, UStopDTAct, UStopDTCon, UTestFRAct, UTestFRCon}
	for _, fn := range fns {
		t.Run(fn.String(), func(t *testing.T) {
			b, err := NewU(fn).Marshal(Standard)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if len(b) != 6 {
				t.Fatalf("U frame length = %d, want 6", len(b))
			}
			if b[0] != StartByte || b[1] != 4 {
				t.Fatalf("bad APCI header % x", b[:2])
			}
			got, n, err := ParseAPDU(b, Standard)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if n != 6 || got.Format != FormatU || got.U != fn {
				t.Fatalf("got %+v (n=%d), want U %v", got, n, fn)
			}
		})
	}
}

func TestUFrameControlOctets(t *testing.T) {
	// The standard fixes the control octets; check a known encoding:
	// TESTFR act = 0x43, TESTFR con = 0x83, STARTDT act = 0x07.
	cases := []struct {
		fn  UFunc
		cf1 byte
	}{
		{UStartDTAct, 0x07},
		{UStartDTCon, 0x0B},
		{UStopDTAct, 0x13},
		{UStopDTCon, 0x23},
		{UTestFRAct, 0x43},
		{UTestFRCon, 0x83},
	}
	for _, c := range cases {
		b, err := NewU(c.fn).Marshal(Standard)
		if err != nil {
			t.Fatalf("%v: %v", c.fn, err)
		}
		if b[2] != c.cf1 {
			t.Errorf("%v: control octet = %#02x, want %#02x", c.fn, b[2], c.cf1)
		}
	}
}

func TestSFrameRoundTrip(t *testing.T) {
	for _, seq := range []uint16{0, 1, 127, 128, 32767} {
		b, err := NewS(seq).Marshal(Standard)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, _, err := ParseAPDU(b, Standard)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if got.Format != FormatS || got.RecvSeq != seq {
			t.Fatalf("seq %d: got %+v", seq, got)
		}
	}
}

func TestIFrameSequenceNumbers(t *testing.T) {
	check := func(ns, nr uint16) bool {
		ns &= 0x7FFF
		nr &= 0x7FFF
		asdu := NewMeasurement(MMeNc, 1, 100, Value{Kind: KindFloat, Float: 60.0}, CauseSpontaneous)
		b, err := NewI(ns, nr, asdu).Marshal(Standard)
		if err != nil {
			return false
		}
		got, _, err := ParseAPDU(b, Standard)
		if err != nil {
			return false
		}
		return got.SendSeq == ns && got.RecvSeq == nr
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestParseAPDUErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{0x68, 0x04, 0x01}},
		{"bad start", []byte{0x69, 0x04, 0x01, 0x00, 0x00, 0x00}},
		{"length too small", []byte{0x68, 0x02, 0x01, 0x00, 0x00, 0x00}},
		{"length beyond buffer", []byte{0x68, 0x20, 0x01, 0x00, 0x00, 0x00}},
		{"S with payload", []byte{0x68, 0x05, 0x01, 0x00, 0x00, 0x00, 0xAA}},
		{"bad U function", []byte{0x68, 0x04, 0xFF, 0x00, 0x00, 0x00}},
		{"nonzero U padding", []byte{0x68, 0x04, 0x43, 0x01, 0x00, 0x00}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := ParseAPDU(c.data, Standard); err == nil {
				t.Fatalf("ParseAPDU(% x) succeeded, want error", c.data)
			}
		})
	}
}

func TestParseAPDUsMultiple(t *testing.T) {
	var payload []byte
	want := 5
	for i := 0; i < want; i++ {
		asdu := NewMeasurement(MMeTf, 1, uint32(100+i), Value{
			Kind: KindFloat, Float: float64(i) * 1.5, HasTime: true,
		}, CausePeriodic)
		b, err := NewI(uint16(i), 0, asdu).Marshal(Standard)
		if err != nil {
			t.Fatal(err)
		}
		payload = append(payload, b...)
	}
	got, n, err := ParseAPDUs(payload, Standard)
	if err != nil {
		t.Fatalf("ParseAPDUs: %v (at offset %d)", err, n)
	}
	if len(got) != want {
		t.Fatalf("decoded %d APDUs, want %d", len(got), want)
	}
	for i, a := range got {
		if a.SendSeq != uint16(i) {
			t.Errorf("APDU %d: SendSeq = %d", i, a.SendSeq)
		}
		if a.ASDU.Objects[0].IOA != uint32(100+i) {
			t.Errorf("APDU %d: IOA = %d", i, a.ASDU.Objects[0].IOA)
		}
	}
}

func TestParseAPDUsPartialError(t *testing.T) {
	good, err := NewU(UTestFRAct).Marshal(Standard)
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append([]byte{}, good...), 0x69, 0x00)
	got, off, err := ParseAPDUs(payload, Standard)
	if err == nil {
		t.Fatal("want error for trailing garbage")
	}
	if len(got) != 1 || off != len(good) {
		t.Fatalf("got %d APDUs at offset %d, want 1 at %d", len(got), off, len(good))
	}
}

func TestTokens(t *testing.T) {
	cases := []struct {
		apdu *APDU
		want string
	}{
		{NewS(5), "S"},
		{NewU(UTestFRAct), "U16"},
		{NewU(UTestFRCon), "U32"},
		{NewU(UStartDTAct), "U1"},
		{NewU(UStartDTCon), "U2"},
		{NewU(UStopDTAct), "U4"},
		{NewU(UStopDTCon), "U8"},
		{NewI(0, 0, NewMeasurement(MMeTf, 1, 1, Value{Kind: KindFloat}, CausePeriodic)), "I36"},
		{NewI(0, 0, NewInterrogation(1, CauseActivation)), "I100"},
	}
	for _, c := range cases {
		if got := c.apdu.Token().String(); got != c.want {
			t.Errorf("Token() = %q, want %q", got, c.want)
		}
		back, err := ParseToken(c.want)
		if err != nil {
			t.Errorf("ParseToken(%q): %v", c.want, err)
		} else if back != c.apdu.Token() {
			t.Errorf("ParseToken(%q) = %+v, want %+v", c.want, back, c.apdu.Token())
		}
	}
}

func TestParseTokenErrors(t *testing.T) {
	for _, s := range []string{"", "X", "U", "U3", "U99", "I", "I0", "I200", "Ix"} {
		if _, err := ParseToken(s); err == nil {
			t.Errorf("ParseToken(%q) succeeded, want error", s)
		}
	}
}

func TestMarshalRejectsBadShapes(t *testing.T) {
	if _, err := (&APDU{Format: FormatI}).Marshal(Standard); err == nil {
		t.Error("I-format without ASDU must fail")
	}
	if _, err := (&APDU{Format: FormatS, ASDU: &ASDU{}}).Marshal(Standard); err == nil {
		t.Error("S-format with ASDU must fail")
	}
	if _, err := (&APDU{Format: FormatU, U: 3}).Marshal(Standard); err == nil {
		t.Error("invalid U function must fail")
	}
}

func TestAPDUBytesStable(t *testing.T) {
	// Marshalling the same APDU twice must give identical bytes.
	asdu := NewSetpointFloat(7, 4001, 123.25, CauseActivation)
	a := NewI(10, 20, asdu)
	b1, err := a.Marshal(Standard)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Marshal(Standard)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("marshal not deterministic")
	}
}
