// Package iec104 implements the IEC 60870-5-104 telecontrol protocol:
// APCI framing, the three APDU formats (I, S, U), ASDU encoding and
// decoding for all 54 type identifications the standard supports over
// TCP/IP, and the CP56Time2a / CP24Time2a time tags.
//
// Beyond the standard, the package implements the paper's primary
// protocol contribution (Uncharted Networks, IMC '20 §6.1): a tolerant
// parser that decodes packets carrying legacy IEC 60870-5-101 field
// sizes inside IEC 104 frames. Two non-compliant dialects were observed
// in the bulk power system the paper measured:
//
//   - a 2-octet Information Object Address (IOA) instead of the
//     standard 3 octets (outstation O37), and
//   - a 1-octet Cause Of Transmission (COT) instead of the standard
//     2 octets (outstations O28, O53, O58).
//
// Both are expressed as a Profile. DetectProfile scores candidate
// profiles against raw ASDU bytes exactly the way the authors debugged
// the malformed captures: a compliant decode must consume the frame
// precisely and produce plausible addresses and quality bits.
package iec104
