// Intrusion: the paper's future-work idea end-to-end — train a
// whitelist from a clean capture (cyber profiles: endpoints,
// per-connection token vocabularies, an n-gram model; physical
// profiles: known points and operating envelopes), then inject an
// Industroyer-style attack into a second capture and watch the
// detector light up.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/ids"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

func main() {
	log.SetFlags(0)

	build := func(seed int64, attack *scadasim.AttackConfig) *core.Analyzer {
		cfg := scadasim.DefaultConfig(topology.Y1, seed)
		cfg.Duration = 4 * time.Minute
		cfg.CyclePeriod = 100 * time.Minute
		sim, err := scadasim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		if attack != nil {
			attack.At = cfg.Start.Add(2 * time.Minute)
			n, err := sim.InjectAttack(tr, *attack)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("injected %s attack: %d packets from %s\n",
				attack.Kind, n, tr.Truth.Attack.Attacker)
		}
		var buf bytes.Buffer
		if err := tr.WritePCAP(&buf); err != nil {
			log.Fatal(err)
		}
		a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
		if err := a.ReadPCAP(&buf); err != nil {
			log.Fatal(err)
		}
		return a
	}

	fmt.Println("== training whitelist from a clean capture ==")
	baseline, err := ids.Train(build(21, nil))
	if err != nil {
		log.Fatal(err)
	}
	eps, conns, points := baseline.Size()
	fmt.Printf("baseline: %d endpoints, %d connections, %d physical points\n\n", eps, conns, points)

	fmt.Println("== scanning a clean capture (different day) ==")
	clean := baseline.Scan(build(22, nil))
	sev := ids.CountBySeverity(clean)
	fmt.Printf("alerts: %d info, %d warning, %d critical\n\n", sev[1], sev[2], sev[3])

	fmt.Println("== scanning a capture with an Industroyer-style recon ==")
	attacked := baseline.Scan(build(21, &scadasim.AttackConfig{Kind: scadasim.AttackRecon}))
	sev = ids.CountBySeverity(attacked)
	fmt.Printf("alerts: %d info, %d warning, %d critical\n", sev[1], sev[2], sev[3])
	shown := 0
	for _, al := range attacked {
		if al.Severity >= 2 {
			fmt.Printf("  %v\n", al)
			shown++
		}
		if shown >= 8 {
			break
		}
	}

	fmt.Println("\n== scanning an insider tampering with AGC setpoints ==")
	net := topology.Build()
	tamper := baseline.Scan(build(21, &scadasim.AttackConfig{
		Kind:     scadasim.AttackSetpointTamper,
		Attacker: net.ServerAddr("C1"),
		Targets:  []topology.OutstationID{"O29"},
	}))
	for _, al := range tamper {
		if al.Kind == ids.AlertValueRange {
			fmt.Printf("  %v\n", al)
		}
	}
}
