// Quickstart: synthesize a few minutes of bulk-power SCADA traffic,
// run the measurement pipeline over it, and print the headline results
// of each analysis — the fastest way to see the whole library working.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize a Y1 capture (the paper's first campaign).
	cfg := scadasim.DefaultConfig(topology.Y1, 7)
	cfg.Duration = 5 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d packets across %d connection attempts\n",
		len(trace.Records), len(trace.Truth.Connections))

	// 2. Serialize to pcap and feed the analyzer — exactly what you
	// would do with a real capture file.
	var pcapBuf bytes.Buffer
	if err := trace.WritePCAP(&pcapBuf); err != nil {
		log.Fatal(err)
	}
	analyzer := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	if err := analyzer.ReadPCAP(&pcapBuf); err != nil {
		log.Fatal(err)
	}

	// 3. TCP flows (Table 3): short-lived flows dominate.
	flows := analyzer.FlowAnalysis().Summary
	fmt.Printf("\nflows: %d short-lived (%.1f%%), %d long-lived\n",
		flows.ShortLived, 100*flows.ShortProportion(), flows.LongLived)

	// 4. Compliance (§6.1): the legacy-dialect stations.
	comp := analyzer.Compliance()
	fmt.Printf("non-compliant stations: %v\n", comp.NonCompliant)

	// 5. Markov chains (Fig. 13): the reset backups at point (1,1).
	mk := analyzer.MarkovChains()
	fmt.Printf("reset-backup connections: %v\n", mk.Point11)
	fmt.Printf("class distribution (types 1-8): %v\n", mk.Distribution[1:])

	// 6. ASDU types (Table 7): I36 and I13 carry nearly everything.
	fmt.Println("\ntop ASDU types:")
	for i, s := range analyzer.TypeDistribution() {
		if i >= 4 {
			break
		}
		fmt.Printf("  I%-4d %-10s %8.3f%%\n", uint8(s.Type), s.Type.Acronym(), s.Percent)
	}
}
