// Livestation: run a real IEC 104 outstation and control station over
// loopback TCP. The control station activates transfer, performs a
// general interrogation (the I100 the paper highlights), receives
// spontaneous updates and issues an AGC-style setpoint — the same
// message flow the synthesized captures contain, on a live wire.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/station"
)

func main() {
	log.SetFlags(0)

	// The outstation: a generator RTU with telemetry, a breaker
	// status point and an AGC setpoint object.
	rtu := station.NewOutstation(29)
	rtu.AddPoint(station.PointDef{IOA: 1001, Type: iec104.MMeTf, Value: 62.0})  // active power, MW
	rtu.AddPoint(station.PointDef{IOA: 1002, Type: iec104.MMeTf, Value: 60.01}) // frequency, Hz
	rtu.AddPoint(station.PointDef{IOA: 1003, Type: iec104.MMeNc, Value: 129.8}) // bus voltage, kV
	rtu.AddPoint(station.PointDef{IOA: 3001, Type: iec104.MDpNa, Value: 2})     // breaker closed
	rtu.AddPoint(station.PointDef{IOA: 7001, Type: iec104.CSeNc, Value: 62.0})  // AGC setpoint
	rtu.OnCommand = func(ioa uint32, v float64) {
		fmt.Printf("RTU: accepted setpoint IOA %d = %.1f MW\n", ioa, v)
	}
	addr, err := rtu.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer rtu.Close()
	fmt.Printf("outstation listening on %s (common address 29)\n", addr)

	// The control station dials, activates (STARTDT) and subscribes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cs, err := station.Dial(ctx, addr.String(), iec104.Standard)
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	cs.OnMeasurement = func(m station.Measurement) {
		fmt.Printf("SCADA: IOA %-5d %-10s = %8.2f (%s)\n", m.IOA, m.Type.Acronym(), m.Value, m.Cause)
	}

	// General interrogation: the server learns every IOA in one
	// command (what Industroyer scanned for iteratively).
	fmt.Println("\n-- general interrogation (I100) --")
	if err := cs.Interrogate(ctx, 29); err != nil {
		log.Fatal(err)
	}

	// Spontaneous reporting: the plant moves, the RTU pushes.
	fmt.Println("\n-- spontaneous updates --")
	for _, p := range []float64{64.5, 66.0, 63.2} {
		if err := rtu.SetValue(1001, p); err != nil {
			log.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// AGC setpoint: ask the generator to back down.
	fmt.Println("\n-- AGC setpoint (I50) --")
	if err := cs.SendSetpoint(ctx, 29, 7001, 58.0); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Println("\ndone: a full primary-connection lifecycle over real TCP")
}
