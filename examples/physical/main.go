// Physical: deep-packet-inspect a synthesized capture for the paper's
// §6.4 findings — rank time series by normalized variance, detect the
// unmet-load frequency excursion with its AGC response, and run the
// Fig. 21 generator-activation signature machine.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/physical"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := scadasim.DefaultConfig(topology.Y1, 5)
	cfg.Duration = 12 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WritePCAP(&buf); err != nil {
		log.Fatal(err)
	}
	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	if err := a.ReadPCAP(&buf); err != nil {
		log.Fatal(err)
	}
	store := a.Physical()
	fmt.Printf("extracted %d physical time series from the tap\n\n", len(store.All()))

	// 1. Normalized-variance ranking: which series moved unusually?
	fmt.Println("-- most interesting series (normalized variance) --")
	for i, s := range store.Ranked(30) {
		if i >= 6 {
			break
		}
		fmt.Printf("%-14s %-10s nvar=%-10.4g samples=%d\n",
			s.Key, s.Type.Acronym(), s.NormalizedVariance(), len(s.Samples))
	}

	// 2. The unmet-load incident: frequency rises, AGC reacts.
	net := topology.Build()
	freq := findSeries(store, net, "O29", topology.KindFrequency)
	var setpoints []*physical.Series
	for _, s := range store.All() {
		if s.Command && s.Type == physical.IEC104Type(iec104.CSeNc) {
			setpoints = append(setpoints, s)
		}
	}
	fmt.Println("\n-- unmet load detection (Figs. 18/19) --")
	for _, ev := range physical.DetectUnmetLoad(freq, physical.Views(setpoints...), 60, 0.01) {
		fmt.Printf("excursion %s..%s peak=%.4f Hz, AGC reduced=%t restored=%t\n",
			ev.Start.Format("15:04:05"), ev.End.Format("15:04:05"),
			ev.PeakFrequency, ev.AGCReduced, ev.AGCRestored)
	}

	// 3. The generator-activation signature (Figs. 20/21).
	volt := findSeries(store, net, "O29", topology.KindVoltage)
	brk := findSeries(store, net, "O29", topology.KindStatus)
	pow := findSeries(store, net, "O29", topology.KindActivePower)
	fmt.Println("\n-- generator activation signature (Fig. 21) --")
	events := physical.DetectSync("O29", volt, brk, pow, physical.DefaultSyncConfig())
	if len(events) == 0 {
		fmt.Println("no activation found")
	}
	for _, ev := range events {
		fmt.Printf("ramp %s -> breaker closed %s -> power flow %s (nominal %.0f kV, compliant=%t)\n",
			ev.RampStart.Format("15:04:05"), ev.BreakerClose.Format("15:04:05"),
			ev.PowerStart.Format("15:04:05"), ev.NominalVoltage, ev.Compliant)
	}
}

// findSeries joins topology semantics with extracted series.
func findSeries(store *physical.Store, net *topology.Network, station topology.OutstationID, kind topology.PointKind) *physical.Series {
	for _, p := range net.Points(station, topology.Y1) {
		if p.Kind != kind {
			continue
		}
		if s, ok := store.Get(physical.SeriesKey{Station: string(station), IOA: p.IOA}); ok {
			return s
		}
	}
	log.Fatalf("no %s series for %s", kind, station)
	return nil
}
