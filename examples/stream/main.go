// Stream: the sharded streaming engine end-to-end, in process. A
// simulated grid feeds the engine at 60x real time while the main
// goroutine polls rolling snapshots — the same view -follow mode
// serves over HTTP — and an online detector (one ids.Monitor per
// shard) flags an Industroyer-style recon sweep the moment its frames
// pass through. At the end the engine drains and the final merged
// state is printed; it matches what the offline profiler reports on
// the equivalent recorded capture.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/ids"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

func main() {
	log.SetFlags(0)

	simulate := func(seed int64, attack bool) (*scadasim.Trace, *topology.Network) {
		cfg := scadasim.DefaultConfig(topology.Y1, seed)
		cfg.Duration = 90 * time.Second
		cfg.CyclePeriod = 100 * time.Minute // keep interrogations out of the baseline
		sim, err := scadasim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		if attack {
			n, err := sim.InjectAttack(tr, scadasim.AttackConfig{
				Kind: scadasim.AttackRecon,
				At:   cfg.Start.Add(45 * time.Second),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("injected recon attack: %d packets at +45s\n", n)
		}
		return tr, sim.Network()
	}

	// Train the whitelist on a clean day, then stream an attacked one.
	cleanTrace, net := simulate(21, false)
	names := core.NamesFromTopology(net)
	trainer := core.NewAnalyzer(names)
	src := stream.NewRecordSource(cleanTrace.Records, 0)
	for {
		pkt, err := src.Next()
		if err != nil {
			break
		}
		trainer.FeedPacket(pkt)
	}
	baseline, err := ids.Train(trainer)
	if err != nil {
		log.Fatal(err)
	}

	attacked, _ := simulate(21, true)

	var mu sync.Mutex // monitors are per shard; the sink is shared
	e := stream.New(stream.Config{
		Workers:       4,
		SnapshotEvery: 250 * time.Millisecond,
		ClusterK:      5,
		ClusterSeed:   1202,
		Names:         names,
		Observer: func(shard int) core.FrameObserver {
			return ids.NewMonitor(baseline, func(al ids.Alert) {
				mu.Lock()
				defer mu.Unlock()
				fmt.Printf("  ALERT [shard %d] %v\n", shard, al)
			})
		},
	})

	done := make(chan error, 1)
	go func() {
		// 60x: the 90 simulated seconds stream in 1.5 wall seconds.
		done <- e.Run(context.Background(), stream.NewRecordSource(attacked.Records, 60))
	}()

	fmt.Println("streaming at 60x; rolling snapshots:")
	tick := time.NewTicker(400 * time.Millisecond)
	defer tick.Stop()
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				log.Fatal(err)
			}
			running = false
		case <-tick.C:
			if p := e.Profile(); p != nil {
				fmt.Printf("  snapshot #%d: %d packets, %d flows, %d ASDUs\n",
					p.Seq, p.Packets, p.Flows.Total, p.TotalASDUs)
			}
		}
	}

	final := e.Final()
	fmt.Printf("\nfinal merged state (identical to the offline analyzer):\n")
	fmt.Printf("  %d packets (%d IEC 104), %d flows, %d ASDUs\n",
		final.Packets, final.IECPackets, final.Flows.Total(), final.TotalASDUs)
	mk := final.MarkovReport()
	fmt.Printf("  markov: %d connections, point(1,1)=%d square=%d ellipse=%d\n",
		len(mk.Chains), len(mk.Point11), len(mk.Square), len(mk.Ellipse))
	comp := final.ComplianceReport()
	fmt.Printf("  non-compliant dialect speakers: %v\n", comp.NonCompliant)
}
