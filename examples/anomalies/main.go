// Anomalies: hunt the paper's outliers in a synthesized capture —
// legacy protocol dialects, backup connections that get reset, the
// misconfigured 430-second keep-alive timer (C2-O30), and the
// stale-data outstation whose spontaneous thresholds are too wide.
// Everything here also works on a real IEC 104 pcap.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := scadasim.DefaultConfig(topology.Y1, 3)
	cfg.Duration = 20 * time.Minute // long enough for two 430s keep-alive attempts
	sim, err := scadasim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WritePCAP(&buf); err != nil {
		log.Fatal(err)
	}
	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	if err := a.ReadPCAP(&buf); err != nil {
		log.Fatal(err)
	}

	// Anomaly 1: non-compliant dialects. A strict parser sees 100%
	// invalid packets from these stations; the tolerant parser names
	// the legacy field layout instead.
	fmt.Println("== legacy dialects ==")
	for _, sc := range a.Compliance().Stations {
		if sc.NonCompliant() {
			fmt.Printf("%-5s speaks %-13s (%d/%d frames unreadable strictly)\n",
				sc.Name, sc.Profile, sc.StrictInvalid, sc.Frames)
		}
	}

	// Anomaly 2: backup connections reset by the outstation — chains
	// stuck at the Markov point (1,1).
	mk := a.MarkovChains()
	fmt.Println("\n== reset backup connections (Fig. 9 / Fig. 14) ==")
	for _, name := range mk.Point11 {
		fmt.Printf("%s: server keep-alives never acknowledged, TCP reset instead\n", name)
	}

	// Anomaly 3: the misconfigured keep-alive timer. Compare each
	// point-(1,1) connection's attempt cadence: C2-O30 stands out an
	// order of magnitude slower.
	fmt.Println("\n== keep-alive cadence of reset backups ==")
	for _, cc := range mk.Chains {
		if cc.Cluster.String() != "point(1,1)" {
			continue
		}
		mean := meanGap(a, cc.Key)
		flag := ""
		if mean > 120*time.Second {
			flag = "  <-- misconfigured T3 (paper: 430s vs ~30s elsewhere)"
		}
		fmt.Printf("%s-%s: mean attempt gap %v%s\n", cc.Server, cc.Outstation, mean.Round(time.Second), flag)
	}

	// Anomaly 4: the stale-data outstation (Type 5): spontaneous-only
	// reporting with thresholds so wide that T3 keep-alives fire in
	// the middle of its primary connection.
	fmt.Println("\n== stale-data outstations (Type 5) ==")
	for _, c := range mk.Classes {
		if c.Type == 5 {
			fmt.Printf("%s: I-frames and keep-alives on the same connection — wide spontaneous thresholds\n", c.Outstation)
		}
	}

	// Anomaly 5: an N-gram whitelist flags an Industroyer-style
	// iterative scan as out-of-distribution traffic.
	fmt.Println("\n== n-gram whitelist vs. an attack sequence ==")
	model := trainWhitelist(a)
	healthy := tokens("I36", "I36", "S", "I36", "I36", "S")
	attack := tokens("I100", "I45", "I46", "I45", "I46", "I100")
	hp, _ := model.Perplexity(healthy)
	ap, _ := model.Perplexity(attack)
	fmt.Printf("perplexity healthy=%.1f attack=%.1f (higher = more anomalous)\n", hp, ap)
}

func meanGap(a *core.Analyzer, key core.ConnKey) time.Duration {
	// Approximate the attempt cadence from the session inter-arrival
	// of server->outstation packets.
	for _, s := range a.Sessions().All() {
		if s.Key.Src == key.Server && s.Key.Dst == key.Outstation && s.Packets > 1 {
			return time.Duration(s.MeanInterArrival() * float64(time.Second))
		}
	}
	return 0
}

func trainWhitelist(a *core.Analyzer) *markov.NGram {
	m, err := markov.NewNGram(2)
	if err != nil {
		log.Fatal(err)
	}
	for _, key := range a.ConnKeys() {
		m.Train(a.TokenStream(key))
	}
	return m
}

func tokens(names ...string) []iec104.Token {
	out := make([]iec104.Token, len(names))
	for i, n := range names {
		t, err := iec104.ParseToken(n)
		if err != nil {
			log.Fatal(err)
		}
		out[i] = t
	}
	return out
}
